#pragma once
// Deterministic fault injection for the simulator (docs/ROBUSTNESS.md).
//
// A FaultPlan is a time-sorted script of link/node failures and repairs,
// written out explicitly or drawn from a seeded RNG (§5 credits super-IPGs
// with inheriting the connectivity of their nucleus plus the
// super-generator links; the plan turns that structural claim into
// measurable degraded-mode behavior). Both engines consume the same plan
// at the same simulated instants, so degraded runs stay bit-identical
// across Engine::kArena / Engine::kReference and across sweep thread
// counts — the same determinism contract the healthy data plane pins.
//
// FaultState is the per-run live view: it applies plan events as simulated
// time advances, tracks which directed links are currently usable, and
// answers fault-aware route queries through a RouteArena whose memo is
// invalidated whenever the usable-link set changes. Routes the topology
// router would take are preferred while they stay alive; otherwise a BFS
// shortest path over the live subgraph serves as the detour.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/network.hpp"
#include "sim/route_arena.hpp"
#include "sim/routers.hpp"

namespace ipg::sim {

class SimObserver;  // sim/observer.hpp

enum class FaultKind : std::uint8_t {
  kLinkDown,  ///< both directions of the (a, b) link fail
  kLinkUp,    ///< both directions repaired
  kNodeDown,  ///< every link touching node a fails
  kNodeUp,    ///< node a repaired (its links recover unless separately dead)
};

struct FaultEvent {
  double time = 0;
  FaultKind kind = FaultKind::kLinkDown;
  NodeId a = 0;  ///< link endpoint / affected node
  NodeId b = 0;  ///< other link endpoint (ignored for node events)
};

/// An immutable-once-running script of failures and repairs. Events are
/// kept sorted by time (stable for equal times, so insertion order breaks
/// ties deterministically). Plans are independent of any network; validate()
/// checks them against one before a run.
class FaultPlan {
 public:
  FaultPlan& fail_link(double time, NodeId a, NodeId b) {
    insert({time, FaultKind::kLinkDown, a, b});
    return *this;
  }
  FaultPlan& repair_link(double time, NodeId a, NodeId b) {
    insert({time, FaultKind::kLinkUp, a, b});
    return *this;
  }
  FaultPlan& fail_node(double time, NodeId v) {
    insert({time, FaultKind::kNodeDown, v, v});
    return *this;
  }
  FaultPlan& repair_node(double time, NodeId v) {
    insert({time, FaultKind::kNodeUp, v, v});
    return *this;
  }

  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }
  std::span<const FaultEvent> events() const noexcept { return events_; }

  /// Throws (util::check) if any event has a non-finite or negative time,
  /// or endpoints out of range for a @p num_nodes network.
  void validate(std::size_t num_nodes) const;

  /// @p count distinct links of @p g (drawn by topology::sample_links with
  /// @p seed; off-chip links only when @p chips is non-null) failing at
  /// first_time, first_time + spacing, ... — a pure function of the
  /// arguments, shareable across sweep jobs.
  static FaultPlan random_link_faults(const topology::Graph& g,
                                      const topology::Clustering* chips,
                                      std::size_t count, double first_time,
                                      double spacing, std::uint64_t seed);

 private:
  void insert(const FaultEvent& e);

  std::vector<FaultEvent> events_;  ///< sorted by time, stable
};

/// Shared (cross-domain) fault state: the plan cursor and the per-link
/// usability bits. Exactly one thread may call apply_until at a time — the
/// sequential loop does so inline, the sharded engine only at its serial
/// sync barriers — while any number of threads may concurrently read
/// link_usable/usable between applications.
class FaultCore {
 public:
  struct Applied {
    bool any = false;         ///< at least one plan event took effect
    bool any_repair = false;  ///< ... and at least one was a repair
  };

  /// @p net and @p plan must outlive the core.
  FaultCore(const SimNetwork& net, const FaultPlan& plan);

  /// Notifies @p obs (may be null) of every plan event as it takes effect.
  /// Pure notification — attaching an observer never changes fault state.
  void set_observer(SimObserver* obs) noexcept { observer_ = obs; }

  /// True when a plan event with time <= now is still unapplied.
  bool pending(double now) const noexcept {
    return next_event_ < events_.size() && events_[next_event_].time <= now;
  }
  /// Time of the next unapplied plan event, +infinity when exhausted.
  double next_fault_time() const noexcept;

  /// Applies every plan event with time <= now, firing on_fault for each.
  /// Serial-only (see class comment); callers owning route memo shards must
  /// evict stale entries afterwards (FaultRoutes::evict).
  Applied apply_until(double now);

  bool link_usable(LinkId link) const noexcept { return usable_[link] != 0; }
  bool node_dead(NodeId v) const noexcept { return node_dead_[v] != 0; }
  std::span<const std::uint8_t> usable() const noexcept { return usable_; }
  const SimNetwork& net() const noexcept { return net_; }

 private:
  void apply(const FaultEvent& e);
  void set_link(NodeId a, NodeId b, bool dead);
  void refresh(LinkId link);

  const SimNetwork& net_;
  SimObserver* observer_ = nullptr;
  std::span<const FaultEvent> events_;
  std::size_t next_event_ = 0;
  std::vector<std::uint8_t> link_dead_;  ///< per directed link
  std::vector<std::uint8_t> node_dead_;  ///< per node
  std::vector<std::uint8_t> usable_;     ///< !link_dead && endpoints alive
};

/// One domain's fault-aware route store: a private RouteArena shard plus
/// the route-around logic, reading the shared FaultCore's usability bits.
/// The sequential engines own a single shard; the sharded engine gives each
/// domain its own, keyed by route source node (route_from(u, ...) is only
/// ever called by the domain that owns u), so shards partition the memo
/// space and never contend. Mutation is confined to the owning thread;
/// evict() additionally asserts it runs only where the engine permits memo
/// invalidation (the sync barriers, for the sharded engine).
class FaultRoutes {
 public:
  /// @p core and @p route must outlive this object.
  FaultRoutes(const FaultCore& core, const Router& route);

  /// Fault-aware route from @p u to @p dst: the memoized route if one is
  /// live, else the topology router's route when it avoids the dead set,
  /// else a BFS shortest path over the live subgraph. Returns false when
  /// @p dst is unreachable from @p u right now. On success the first hop
  /// of *out is guaranteed usable.
  bool route_from(NodeId u, NodeId dst, RouteRef& out);

  /// Copies a raw port sequence (a migrating packet's remaining route,
  /// read from another domain's shard at a barrier) into this shard.
  RouteRef adopt(std::span<const std::uint16_t> ports) {
    return arena_.adopt(ports);
  }

  /// Invalidates memo entries made stale by the plan events just applied:
  /// clears everything after a repair (a shorter route may have come
  /// back), else drops only the routes crossing a now-unusable link.
  /// Asserts mutation is currently allowed (see set_mutation_allowed).
  void evict(bool any_repair);

  /// Barrier fence for the sharded engine: memo invalidation outside a
  /// sync barrier would race with concurrent readers, so evict() checks
  /// this flag. Sequential engines leave it permanently true.
  void set_mutation_allowed(bool allowed) noexcept {
    mutation_allowed_ = allowed;
  }

  /// Port buffer backing the refs handed out by route_from. Re-read after
  /// every route_from/adopt call — the arena may reallocate.
  const std::uint16_t* ports() const noexcept { return arena_.data(); }
  std::span<const std::uint16_t> ports(RouteRef r) const noexcept {
    return arena_.ports(r);
  }

 private:
  const FaultCore& core_;
  const Router& route_;
  RouteArena arena_;
  std::vector<std::uint16_t> scratch_;  ///< route assembly buffer
  bool mutation_allowed_ = true;
};

/// Per-run live fault view for the sequential engines: one FaultCore plus
/// one FaultRoutes shard behind the pre-sharding interface. Every route a
/// fault-aware run follows — healthy-router routes and BFS detours alike —
/// is stored in the shard, so kArena and kReference read byte-identical
/// port sequences by construction.
class FaultState {
 public:
  /// @p net, @p plan, and @p route must outlive the state.
  FaultState(const SimNetwork& net, const FaultPlan& plan, const Router& route)
      : core_(net, plan), routes_(core_, route) {}

  void set_observer(SimObserver* obs) noexcept { core_.set_observer(obs); }

  /// Applies every plan event with time <= now. Newly dead links evict the
  /// memoized routes that cross them; any repair clears the whole memo
  /// (a shorter route may have come back).
  void advance_to(double now) {
    if (core_.pending(now)) {
      routes_.evict(core_.apply_until(now).any_repair);
    }
  }

  bool link_usable(LinkId link) const noexcept {
    return core_.link_usable(link);
  }
  bool node_dead(NodeId v) const noexcept { return core_.node_dead(v); }
  std::span<const std::uint8_t> usable() const noexcept {
    return core_.usable();
  }
  bool route_from(NodeId u, NodeId dst, RouteRef& out) {
    return routes_.route_from(u, dst, out);
  }
  /// Copies an externally planned port route (run_routed presets) into the
  /// shard, so preset packets resolve against the same buffer as routed
  /// ones. Append-only — never evicted, refs stay valid for the run.
  RouteRef adopt(std::span<const std::uint16_t> ports) {
    return routes_.adopt(ports);
  }
  const std::uint16_t* ports() const noexcept { return routes_.ports(); }

 private:
  FaultCore core_;
  FaultRoutes routes_;
};

}  // namespace ipg::sim
