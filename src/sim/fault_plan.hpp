#pragma once
// Deterministic fault injection for the simulator (docs/ROBUSTNESS.md).
//
// A FaultPlan is a time-sorted script of link/node failures and repairs,
// written out explicitly or drawn from a seeded RNG (§5 credits super-IPGs
// with inheriting the connectivity of their nucleus plus the
// super-generator links; the plan turns that structural claim into
// measurable degraded-mode behavior). Both engines consume the same plan
// at the same simulated instants, so degraded runs stay bit-identical
// across Engine::kArena / Engine::kReference and across sweep thread
// counts — the same determinism contract the healthy data plane pins.
//
// FaultState is the per-run live view: it applies plan events as simulated
// time advances, tracks which directed links are currently usable, and
// answers fault-aware route queries through a RouteArena whose memo is
// invalidated whenever the usable-link set changes. Routes the topology
// router would take are preferred while they stay alive; otherwise a BFS
// shortest path over the live subgraph serves as the detour.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/network.hpp"
#include "sim/route_arena.hpp"
#include "sim/routers.hpp"

namespace ipg::sim {

class SimObserver;  // sim/observer.hpp

enum class FaultKind : std::uint8_t {
  kLinkDown,  ///< both directions of the (a, b) link fail
  kLinkUp,    ///< both directions repaired
  kNodeDown,  ///< every link touching node a fails
  kNodeUp,    ///< node a repaired (its links recover unless separately dead)
};

struct FaultEvent {
  double time = 0;
  FaultKind kind = FaultKind::kLinkDown;
  NodeId a = 0;  ///< link endpoint / affected node
  NodeId b = 0;  ///< other link endpoint (ignored for node events)
};

/// An immutable-once-running script of failures and repairs. Events are
/// kept sorted by time (stable for equal times, so insertion order breaks
/// ties deterministically). Plans are independent of any network; validate()
/// checks them against one before a run.
class FaultPlan {
 public:
  FaultPlan& fail_link(double time, NodeId a, NodeId b) {
    insert({time, FaultKind::kLinkDown, a, b});
    return *this;
  }
  FaultPlan& repair_link(double time, NodeId a, NodeId b) {
    insert({time, FaultKind::kLinkUp, a, b});
    return *this;
  }
  FaultPlan& fail_node(double time, NodeId v) {
    insert({time, FaultKind::kNodeDown, v, v});
    return *this;
  }
  FaultPlan& repair_node(double time, NodeId v) {
    insert({time, FaultKind::kNodeUp, v, v});
    return *this;
  }

  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }
  std::span<const FaultEvent> events() const noexcept { return events_; }

  /// Throws (util::check) if any event has a non-finite or negative time,
  /// or endpoints out of range for a @p num_nodes network.
  void validate(std::size_t num_nodes) const;

  /// @p count distinct links of @p g (drawn by topology::sample_links with
  /// @p seed; off-chip links only when @p chips is non-null) failing at
  /// first_time, first_time + spacing, ... — a pure function of the
  /// arguments, shareable across sweep jobs.
  static FaultPlan random_link_faults(const topology::Graph& g,
                                      const topology::Clustering* chips,
                                      std::size_t count, double first_time,
                                      double spacing, std::uint64_t seed);

 private:
  void insert(const FaultEvent& e);

  std::vector<FaultEvent> events_;  ///< sorted by time, stable
};

/// Per-run live fault view shared by both engines. Owns the run's
/// RouteArena: every route a fault-aware run follows — healthy-router
/// routes and BFS detours alike — is stored here, so the two engines read
/// byte-identical port sequences by construction.
class FaultState {
 public:
  /// @p net, @p plan, and @p route must outlive the state.
  FaultState(const SimNetwork& net, const FaultPlan& plan,
             const Router& route);

  /// Notifies @p obs (may be null) of every plan event as it takes effect.
  /// Pure notification — attaching an observer never changes fault state.
  void set_observer(SimObserver* obs) noexcept { observer_ = obs; }

  /// Applies every plan event with time <= now. Newly dead links evict the
  /// memoized routes that cross them; any repair clears the whole memo
  /// (a shorter route may have come back).
  void advance_to(double now) {
    if (next_event_ < events_.size() && events_[next_event_].time <= now) {
      apply_until(now);
    }
  }

  bool link_usable(LinkId link) const noexcept { return usable_[link] != 0; }
  bool node_dead(NodeId v) const noexcept { return node_dead_[v] != 0; }
  std::span<const std::uint8_t> usable() const noexcept { return usable_; }

  /// Fault-aware route from @p u to @p dst: the memoized route if one is
  /// live, else the topology router's route when it avoids the dead set,
  /// else a BFS shortest path over the live subgraph. Returns false when
  /// @p dst is unreachable from @p u right now. On success the first hop
  /// of *out is guaranteed usable.
  bool route_from(NodeId u, NodeId dst, RouteRef& out);

  /// Port buffer backing the refs handed out by route_from. Re-read after
  /// every route_from call — the arena may reallocate.
  const std::uint16_t* ports() const noexcept { return arena_.data(); }

 private:
  void apply_until(double now);
  void apply(const FaultEvent& e);
  void set_link(NodeId a, NodeId b, bool dead);
  void refresh(LinkId link);

  const SimNetwork& net_;
  const Router& route_;
  SimObserver* observer_ = nullptr;
  std::span<const FaultEvent> events_;
  std::size_t next_event_ = 0;
  std::vector<std::uint8_t> link_dead_;  ///< per directed link
  std::vector<std::uint8_t> node_dead_;  ///< per node
  std::vector<std::uint8_t> usable_;     ///< !link_dead && endpoints alive
  RouteArena arena_;
  std::vector<std::uint16_t> scratch_;  ///< route assembly buffer
};

}  // namespace ipg::sim
