#pragma once
// Domain-decomposed parallel simulation engine (Engine::kSharded).
//
// The network's nodes are partitioned into K domains along the MCMP chip
// hierarchy (topology::make_domain_cut): whole chips per domain, so every
// cross-domain packet movement rides an off-chip link. Each domain owns a
// private event queue, the LinkHot entries of its outgoing links, its
// injection sub-schedule, and (degraded runs) a private route-memo shard;
// domains advance together through conservative time windows [m, W) where
// m is the global next-event time and W = m + lookahead. The lookahead is
// the minimum time any event can influence another domain — off-chip link
// latency plus the fastest cross-domain head/tail transfer (clamped by the
// retry backoff when retransmissions are enabled) — so no event arriving
// from another domain can land inside the window that produced it.
// Cross-domain arrivals are buffered into per-(src, dst) domain mailboxes
// and drained at the barrier.
//
// Determinism: event tie-breaks are identity-derived (Event::kPacketSeqBase),
// so each domain locally pops a sub-order of the single canonical (time,
// seq) order, and a K-way merge of the domains' window records at each
// barrier replays deliveries (and observer hooks) in exactly the sequential
// engines' order. Every SimResult field is therefore bit-identical to
// Engine::kReference for every K and every thread count — pinned by
// test_sim_sharded the same way test_sim_equivalence pins kArena.
//
// Bounded buffers (cfg.node_buffer_packets > 0) are supported through a
// per-boundary-node credit protocol layered on the same barriers: claims on
// nodes with foreign in-neighbors spend barrier-granted credits and are
// admitted only when provably order-independent (below every other
// claimant domain's next-event floor), stalls re-queue the claim for the
// barrier to order exactly, claim/free deltas commit into the shared
// occupancy in (time, seq) order at the replay frontier, and contended
// phases fall back to serial windows that run the sequential loop body
// verbatim. See the design comment in sharded.cpp.
//
// This header is internal to src/sim (used by simulator.cpp's dispatch).

#include <vector>

#include "sim/engine_internal.hpp"
#include "sim/fault_plan.hpp"
#include "sim/route_arena.hpp"
#include "sim/simulator.hpp"

namespace ipg::sim::detail {

/// Healthy sharded run over packets referencing @p arena (const, shared by
/// all domains). Entered from run_flat when cfg.engine == kSharded.
SimResult run_sharded_flat(const SimNetwork& net,
                           std::vector<FlatPacket>& packets,
                           const RouteArena& arena, const SimConfig& cfg);

/// Degraded-mode sharded run: shared FaultCore applied only at barriers,
/// per-domain FaultRoutes shards, migrating packets' remaining routes
/// copied between shards at the barrier drain. Entered from run_faulty.
/// Non-empty @p presets (parallel to @p packets; run_routed) carry preset
/// port routes into @p preset_ports: each is adopted into the source
/// domain's shard during the single-threaded setup, before the shards'
/// mutation fence engages.
SimResult run_sharded_faulty(const SimNetwork& net, const Router& route,
                             const FaultPlan& plan,
                             std::vector<FaultPacket>& packets,
                             const SimConfig& cfg,
                             std::span<const RoutedInjection> presets = {},
                             std::span<const std::uint16_t> preset_ports = {});

}  // namespace ipg::sim::detail
