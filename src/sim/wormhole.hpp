#pragma once
// Cycle-accurate flit-level wormhole simulator.
//
// The flow-level engine in simulator.hpp treats wormhole as cut-through;
// this engine models it properly: packets are worms of `length` flits,
// input buffers hold a few flits per virtual channel, a blocked worm stalls
// in place across multiple routers, and flits advance at most one link per
// cycle (fractional link bandwidths are honoured with credit accumulators,
// so the unit-chip-capacity model's 8/15-flit/cycle links work unchanged).
//
// Deadlock freedom: each hop carries a VC class = number of *super*
// (off-chip) hops completed so far. Within a class, nucleus-internal routes
// are dimension-ordered (acyclic channel dependencies); crossing a super
// link strictly increases the class, so the full channel dependency graph
// is acyclic whenever num_vcs exceeds the maximum off-chip hop count of a
// route (l-1 for the super-IPG routers, 0 for e-cube). A configurable
// stall detector turns an unexpected deadlock into an error instead of a
// hang.

#include <cstdint>
#include <vector>

#include "sim/network.hpp"
#include "sim/routers.hpp"
#include "sim/simulator.hpp"

namespace ipg::sim {

struct WormholeConfig {
  std::size_t packet_length_flits = 16;
  unsigned num_vcs = 4;             ///< must exceed max off-chip hops per route
  std::size_t vc_buffer_flits = 8;  ///< per (link, vc) input buffer
  std::size_t max_cycles = 10'000'000;
  std::size_t stall_limit = 100'000;  ///< cycles without progress => deadlock
};

/// Assigns a VC class to every hop of a route; the engine uses the class
/// as the VC index. Deadlock freedom requires classes that make the
/// channel dependency graph acyclic (see the helpers below).
using VcClassifier = std::function<std::vector<std::uint8_t>(
    topology::NodeId src, const std::vector<std::size_t>& dims)>;

/// All hops class 0 — correct for inherently acyclic routes (e-cube on a
/// hypercube, meshes without wraparound).
VcClassifier single_vc_class();

/// Super-IPG routes: class = number of super (off-chip) hops completed;
/// nucleus-internal segments are dimension-ordered, so ranks increase
/// monotonically along every route. Needs num_vcs >= l.
VcClassifier super_ipg_vc_classes(std::size_t num_nucleus_generators);

/// k-ary n-cube dateline scheme: within each dimension's run, class 0
/// until the hop that crosses the wraparound, class 1 after. Needs
/// num_vcs >= 2.
VcClassifier torus_dateline_vc_classes(std::size_t k, std::size_t n);

struct WormholeResult {
  std::size_t packets_delivered = 0;
  double makespan_cycles = 0;
  double avg_latency_cycles = 0;
  double avg_hops = 0;
  double throughput_flits_per_node_cycle = 0;
};

/// One packet per source (dst[v] == v means none), all injected at cycle 0.
/// @p classes assigns VC classes per hop; pass {} for single-class routing.
WormholeResult run_wormhole_batch(const SimNetwork& net, const Router& route,
                                  const std::vector<NodeId>& dst,
                                  const WormholeConfig& cfg,
                                  const VcClassifier& classes = {});

/// Open-loop wormhole: each node injects with probability @p rate per
/// cycle for @p inject_cycles cycles, destinations from @p pattern; the
/// network then drains. Latencies are measured from injection.
WormholeResult run_wormhole_open(const SimNetwork& net, const Router& route,
                                 const TrafficPattern& pattern, double rate,
                                 std::size_t inject_cycles,
                                 const WormholeConfig& cfg,
                                 const VcClassifier& classes = {},
                                 std::uint64_t seed = 1);

}  // namespace ipg::sim
