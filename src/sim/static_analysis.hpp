#pragma once
// Static (route-level) load analysis — the paper's bandwidth arguments in
// executable form. For uniform random traffic the expected flit rate into
// a link is lambda * N * p_L * len, where p_L is the probability a random
// packet's route crosses the link; saturation is reached when the most
// loaded link hits its bandwidth. This predicts the simulator's saturation
// throughput without running it, and the benches/tests cross-check the two.

#include <cstddef>

#include "sim/network.hpp"
#include "sim/routers.hpp"

namespace ipg::sim {

struct LoadAnalysis {
  LinkId bottleneck = 0;
  double bottleneck_probability = 0;  ///< p_L of the most loaded link
  bool bottleneck_offchip = false;
  /// Saturation throughput in flits per node per cycle:
  /// min over links of bandwidth_L / (N * p_L).
  double predicted_saturation_throughput = 0;
  double avg_offchip_probability = 0;  ///< mean p_L over off-chip links
};

/// Enumerates all ordered pairs when N <= @p exact_limit, otherwise samples
/// @p samples random pairs. Deterministic for a seed.
LoadAnalysis analyze_uniform_load(const SimNetwork& net, const Router& route,
                                  std::size_t exact_limit = 512,
                                  std::size_t samples = 200'000,
                                  std::uint64_t seed = 0x10ad);

}  // namespace ipg::sim
