#include "sim/wormhole.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ipg::sim {

namespace {

struct Worm {
  std::vector<std::uint16_t> ports;   ///< per-hop output port
  std::vector<LinkId> links;          ///< per-hop link id
  std::vector<std::uint8_t> vc;       ///< per-hop VC class
  std::size_t len = 0;                ///< flits
  /// sent[h]: flits that have crossed link h. Derived quantities:
  ///   avail(h) = (h ? sent[h-1] : len) - sent[h]   (flits ready to cross h)
  ///   occ(h)   = sent[h] - sent[h+1]               (flits buffered after h)
  std::vector<std::size_t> sent;
  std::size_t next_alloc = 0;  ///< first hop without a VC allocation
  bool delivered = false;
  double inject = 0;  ///< cycle at which the worm enters its source queue
};

}  // namespace

VcClassifier single_vc_class() {
  return [](NodeId, const std::vector<std::size_t>& dims) {
    return std::vector<std::uint8_t>(dims.size(), 0);
  };
}

VcClassifier super_ipg_vc_classes(std::size_t num_nucleus_generators) {
  return [num_nucleus_generators](NodeId, const std::vector<std::size_t>& dims) {
    std::vector<std::uint8_t> cls(dims.size());
    std::uint8_t c = 0;
    for (std::size_t h = 0; h < dims.size(); ++h) {
      cls[h] = c;
      if (dims[h] >= num_nucleus_generators) ++c;  // super hop: next class
    }
    return cls;
  };
}

VcClassifier torus_dateline_vc_classes(std::size_t k, std::size_t n) {
  return [k, n](NodeId src, const std::vector<std::size_t>& dims) {
    // Track the coordinate per dimension; crossing the wraparound edge in
    // either direction switches that dimension's remaining hops to class 1.
    std::vector<std::size_t> coord(n);
    std::size_t rest = src;
    for (std::size_t d = 0; d < n; ++d) {
      coord[d] = rest % k;
      rest /= k;
    }
    std::vector<std::uint8_t> wrapped(n, 0);
    std::vector<std::uint8_t> cls(dims.size());
    for (std::size_t h = 0; h < dims.size(); ++h) {
      const std::size_t d = dims[h] / 2;
      const bool up = dims[h] % 2 == 0;
      if (up && coord[d] == k - 1) wrapped[d] = 1;
      if (!up && coord[d] == 0) wrapped[d] = 1;
      cls[h] = wrapped[d];
      coord[d] = up ? (coord[d] + 1) % k : (coord[d] + k - 1) % k;
    }
    return cls;
  };
}

namespace {

/// Builds one worm; returns an empty optional-like worm (no ports) when
/// src == dst.
Worm build_worm(const SimNetwork& net, const Router& route,
                const VcClassifier& classes, const WormholeConfig& cfg,
                NodeId src, NodeId dst, double inject) {
  Worm w;
  const auto dims = route(src, dst);
  w.ports = net.ports_from_dims(src, dims);
  w.len = cfg.packet_length_flits;
  w.inject = inject;
  w.links.reserve(w.ports.size());
  std::vector<std::uint8_t> cls =
      classes ? classes(src, dims) : std::vector<std::uint8_t>(dims.size(), 0);
  IPG_CHECK(cls.size() == dims.size(), "classifier must cover every hop");
  NodeId at = src;
  for (std::size_t h = 0; h < w.ports.size(); ++h) {
    w.links.push_back(net.link_of(at, w.ports[h]));
    IPG_CHECK(cls[h] < cfg.num_vcs,
              "VC class exceeds num_vcs — raise num_vcs to keep the "
              "channel dependency graph acyclic");
    at = net.arc(at, w.ports[h]).to;
  }
  w.vc = std::move(cls);
  w.sent.assign(w.ports.size(), 0);
  return w;
}

WormholeResult run_worms(const SimNetwork& net, std::vector<Worm> worms,
                         const WormholeConfig& cfg) {
  IPG_CHECK(cfg.num_vcs >= 1 && cfg.vc_buffer_flits >= 1,
            "need at least one VC and one buffer slot");
  // --- per-(link, vc) ownership, per-link credits ---------------------------
  constexpr std::uint32_t kFree = static_cast<std::uint32_t>(-1);
  const std::size_t vc_slots = net.num_links() * cfg.num_vcs;
  std::vector<std::uint32_t> owner(vc_slots, kFree);
  std::vector<double> credit(net.num_links(), 0.0);
  std::vector<std::uint8_t> rr(net.num_links(), 0);  ///< round-robin pointer

  auto slot = [&](LinkId link, std::uint8_t vc) {
    return link * cfg.num_vcs + vc;
  };

  WormholeResult res;
  std::size_t remaining = worms.size();
  std::size_t stall = 0;
  double latency_sum = 0;
  std::size_t hop_sum = 0;

  // Snapshot of `sent` at cycle start, per worm — a flit that crosses link
  // h-1 this cycle may not also cross link h (one link per flit per cycle).
  std::vector<std::vector<std::size_t>> sent0(worms.size());

  std::size_t cycle = 0;
  for (; cycle < cfg.max_cycles && remaining > 0; ++cycle) {
    // Phase 1: VC allocation — heads request the next link in order.
    for (std::uint32_t wi = 0; wi < worms.size(); ++wi) {
      Worm& w = worms[wi];
      if (w.delivered || w.inject > static_cast<double>(cycle) ||
          w.next_alloc >= w.ports.size()) {
        continue;
      }
      const std::size_t h = w.next_alloc;
      // Head must have crossed the previous link already (or be at src).
      if (h > 0 && w.sent[h - 1] == 0) continue;
      auto& own = owner[slot(w.links[h], w.vc[h])];
      if (own != kFree) continue;  // VC busy: head-of-line wait
      own = wi;
      ++w.next_alloc;
    }

    // Phase 2: flit movement against the start-of-cycle snapshot.
    for (std::uint32_t wi = 0; wi < worms.size(); ++wi) sent0[wi] = worms[wi].sent;

    bool any_movement = false;
    for (LinkId link = 0; link < net.num_links(); ++link) {
      double c = std::min(credit[link] + net.bandwidth(link),
                          std::max(1.0, net.bandwidth(link)));
      bool progress = true;
      while (c >= 1.0 && progress) {
        progress = false;
        for (std::size_t probe = 0; probe < cfg.num_vcs && c >= 1.0; ++probe) {
          const auto vc =
              static_cast<std::uint8_t>((rr[link] + probe) % cfg.num_vcs);
          const std::uint32_t wi = owner[slot(link, vc)];
          if (wi == kFree) continue;
          Worm& w = worms[wi];
          // First unfinished hop of this worm over (link, vc). Routes never
          // reuse a link, so the match is unique.
          std::size_t h = w.ports.size();
          for (std::size_t k = 0; k < w.next_alloc; ++k) {
            if (w.links[k] == link && w.vc[k] == vc && w.sent[k] < w.len) {
              h = k;
              break;
            }
          }
          if (h == w.ports.size()) continue;
          // No-teleport rule: availability from the snapshot.
          const std::size_t upstream = h == 0 ? w.len : sent0[wi][h - 1];
          if (upstream <= w.sent[h]) continue;
          const bool last_hop = h + 1 == w.ports.size();
          if (!last_hop && w.sent[h] - w.sent[h + 1] >= cfg.vc_buffer_flits) {
            continue;  // downstream buffer full
          }
          // Move one flit across `link`.
          c -= 1.0;
          progress = true;
          any_movement = true;
          rr[link] = static_cast<std::uint8_t>((vc + 1) % cfg.num_vcs);
          ++w.sent[h];
          if (w.sent[h] == w.len) {
            // The tail crossing link h empties the buffer of link h-1, so
            // that VC can be recycled; the VC of link h itself stays held
            // until the tail drains further (or is ejected on the last hop).
            if (h >= 1) owner[slot(w.links[h - 1], w.vc[h - 1])] = kFree;
            if (last_hop) {
              owner[slot(link, vc)] = kFree;
              w.delivered = true;
              --remaining;
              ++res.packets_delivered;
              latency_sum += static_cast<double>(cycle + 1) - w.inject;
              hop_sum += w.ports.size();
              res.makespan_cycles = static_cast<double>(cycle + 1);
            }
          }
        }
      }
      credit[link] = std::min(c, std::max(1.0, net.bandwidth(link)));
    }
    bool any_active = false;
    for (const Worm& w : worms) {
      if (!w.delivered && w.inject <= static_cast<double>(cycle)) {
        any_active = true;
        break;
      }
    }
    stall = (any_movement || !any_active) ? 0 : stall + 1;
    IPG_CHECK(stall <= cfg.stall_limit,
              "wormhole simulation stalled — routing deadlock or starvation");
  }
  IPG_CHECK(remaining == 0, "wormhole simulation exceeded max_cycles");

  if (res.packets_delivered > 0) {
    res.avg_latency_cycles = latency_sum / static_cast<double>(res.packets_delivered);
    res.avg_hops = static_cast<double>(hop_sum) /
                   static_cast<double>(res.packets_delivered);
  }
  if (res.makespan_cycles > 0) {
    res.throughput_flits_per_node_cycle =
        static_cast<double>(res.packets_delivered) *
        static_cast<double>(cfg.packet_length_flits) /
        (static_cast<double>(net.num_nodes()) * res.makespan_cycles);
  }
  return res;
}

}  // namespace

WormholeResult run_wormhole_batch(const SimNetwork& net, const Router& route,
                                  const std::vector<NodeId>& dst,
                                  const WormholeConfig& cfg,
                                  const VcClassifier& classes) {
  IPG_CHECK(dst.size() == net.num_nodes(), "one destination per node");
  std::vector<Worm> worms;
  for (NodeId v = 0; v < dst.size(); ++v) {
    if (dst[v] == v) continue;
    Worm w = build_worm(net, route, classes, cfg, v, dst[v], 0.0);
    if (!w.ports.empty()) worms.push_back(std::move(w));
  }
  return run_worms(net, std::move(worms), cfg);
}

WormholeResult run_wormhole_open(const SimNetwork& net, const Router& route,
                                 const TrafficPattern& pattern, double rate,
                                 std::size_t inject_cycles,
                                 const WormholeConfig& cfg,
                                 const VcClassifier& classes,
                                 std::uint64_t seed) {
  IPG_CHECK(rate > 0 && rate <= 1.0, "injection rate must be in (0, 1]");
  util::Xoshiro256 rng(seed);
  std::vector<Worm> worms;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    for (std::size_t cycle = 0; cycle < inject_cycles; ++cycle) {
      if (!rng.bernoulli(rate)) continue;
      const NodeId d = pattern(v, rng);
      if (d == v) continue;
      Worm w = build_worm(net, route, classes, cfg, v, d,
                          static_cast<double>(cycle));
      if (!w.ports.empty()) worms.push_back(std::move(w));
    }
  }
  return run_worms(net, std::move(worms), cfg);
}

}  // namespace ipg::sim
