#pragma once
// Route providers for the simulator: each returns the dimension word a
// packet follows from src to dst. Minimal/canonical routes per topology:
// e-cube (dimension order) for hypercubes and k-ary n-cubes, the §4.2
// last-visit-rewrite route for super-IPGs, and a BFS-table fallback for
// arbitrary graphs.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/network.hpp"
#include "topology/graph.hpp"
#include "topology/super_ipg.hpp"

namespace ipg::sim {

/// A router maps (src, dst) to the dimension labels of the hops.
using Router =
    std::function<std::vector<std::size_t>(topology::NodeId, topology::NodeId)>;

/// Dimension-order (e-cube) routing on Q_n; deadlock-free.
Router hypercube_router(unsigned n);

/// Dimension-order routing on the k-ary n-cube, taking the shorter wrap
/// direction per dimension (labels 2d / 2d+1 as in kary_ncube_graph).
Router kary_router(std::size_t k, std::size_t n);

/// The super-IPG family router (SuperIpg::route). The SuperIpg must
/// outlive the returned router.
Router super_ipg_router(const topology::SuperIpg& ipg);

/// Hierarchical minimal routing on the balanced dragonfly DF(a, h)
/// (topology::dragonfly_graph): local hop to the exit router, the unique
/// global link toward the destination group, local hop to the destination
/// — at most l-g-l (3 hops). Deadlock-free under unbounded buffers.
Router dragonfly_router(std::size_t a, std::size_t h);

/// Deterministic up/down routing on the three-level fat-tree FT(k)
/// (topology::fat_tree_graph). Both endpoints must be hosts (ids below
/// k^3/4); the upward aggregation/core choice is spread by the destination
/// address (dst slot picks the aggregation column, dst edge index picks the
/// core), the standard static ECMP hash made deterministic.
Router fat_tree_router(std::size_t k);

/// Shortest-path routing via per-destination BFS tables, built lazily and
/// cached; intended for small graphs (memory O(N) per distinct dst).
Router table_router(std::shared_ptr<const topology::Graph> graph);

/// Wraps @p inner with a shared per-(src, dst) memo of dimension words:
/// each pair is routed once for the lifetime of the cache, however many
/// runs or sweep points reuse the router. Thread-safe; copies of the
/// returned Router share the cache. Within a single run the simulator's
/// route arena already memoizes per pair — this wrapper adds reuse *across*
/// runs (seed replicates, switching panels, rate sweeps).
Router cached_router(Router inner);

/// Appends the port route of a BFS shortest path from @p src to @p dst that
/// crosses only links with usable[link] != 0 onto @p out. Deterministic:
/// ports are scanned in order and the frontier is FIFO, so the chosen path
/// is a pure function of (net, usable, src, dst). Returns false — leaving
/// @p out untouched — when no live path exists. This is the fault-aware
/// data plane's detour fallback (FaultState::route_from).
bool append_live_route(const SimNetwork& net,
                       std::span<const std::uint8_t> usable,
                       topology::NodeId src, topology::NodeId dst,
                       std::vector<std::uint16_t>& out);

}  // namespace ipg::sim
