#pragma once
// The simulated network: a dimension-labelled graph plus a chip partition
// and per-directed-link bandwidths (§4's MCMP hardware model).
//
// Bandwidth is in flits/cycle and may be fractional — the unit chip
// capacity model gives every chip the same aggregate off-chip bandwidth,
// spread over however many off-chip links the topology puts on the chip,
// so per-link bandwidths like 8/15 flits/cycle arise naturally (the
// HSN(3,Q4) example of §4). On-chip links are provisioned fast enough not
// to be the bottleneck, per the paper's assumption.

#include <vector>

#include "topology/graph.hpp"

namespace ipg::sim {

using topology::Arc;
using topology::Clustering;
using topology::Graph;
using topology::NodeId;

/// Index of a directed link: position in the graph's global arc array.
using LinkId = std::size_t;

class SimNetwork {
 public:
  /// @p offchip_budget_per_chip: total off-chip bandwidth of one chip
  /// (flits/cycle), split uniformly over its off-chip links (a link gets
  /// the min of its two endpoints' allocations). @p onchip_bandwidth:
  /// bandwidth of every on-chip link.
  SimNetwork(Graph graph, Clustering chips, double offchip_budget_per_chip,
             double onchip_bandwidth);

  /// Unit link capacity model (§3): every link, on- or off-chip, has the
  /// same bandwidth.
  static SimNetwork with_uniform_bandwidth(Graph graph, Clustering chips,
                                           double link_bandwidth);

  /// Explicit per-arc bandwidths (arc order = the graph's global arc
  /// order). @p chips still classifies links as on-/off-chip for stats.
  static SimNetwork with_bandwidths(Graph graph, Clustering chips,
                                    std::vector<double> per_arc_bandwidth);

  const Graph& graph() const noexcept { return graph_; }
  const Clustering& chips() const noexcept { return chips_; }
  std::size_t num_nodes() const noexcept { return graph_.num_nodes(); }
  std::size_t num_links() const noexcept { return graph_.num_arcs(); }

  /// Global link id of node @p v's @p port-th outgoing arc.
  LinkId link_of(NodeId v, std::size_t port) const noexcept {
    return first_link_[v] + port;
  }
  /// Per-node offsets into the link/arc array (num_nodes entries); the
  /// engines index it directly in their hot loops.
  const std::size_t* first_links() const noexcept { return first_link_.data(); }
  const Arc& arc(NodeId v, std::size_t port) const noexcept {
    return graph_.arcs_of(v)[port];
  }
  /// Source node of a directed link (inverse of link_of; the fault state
  /// uses it to recompute link usability after node events).
  NodeId link_from(LinkId link) const noexcept { return link_from_[link]; }
  /// Downstream node of a directed link.
  NodeId link_to(LinkId link) const noexcept {
    return arc(link_from_[link], link - first_link_[link_from_[link]]).to;
  }

  double bandwidth(LinkId link) const noexcept { return bandwidth_[link]; }
  bool is_offchip(LinkId link) const noexcept { return offchip_[link]; }

  /// Port of @p v whose arc has dimension label @p dim; throws if absent.
  /// O(1) via the dense (node, dim) -> port table built at construction.
  std::size_t port_for_dim(NodeId v, std::size_t dim) const;

  /// Number of distinct dimension labels (max label + 1).
  std::size_t num_dims() const noexcept { return num_dims_; }

  /// Converts a dimension word (generator indices) into a port route.
  std::vector<std::uint16_t> ports_from_dims(NodeId src,
                                             const std::vector<std::size_t>& dims) const;

  /// Allocation-free variant: appends the port route for @p dims starting
  /// at @p src onto @p out (the RouteArena hot path).
  void append_route(NodeId src, const std::vector<std::size_t>& dims,
                    std::vector<std::uint16_t>& out) const;

 private:
  void build_dim_port_table();

  Graph graph_;
  Clustering chips_;
  std::vector<std::size_t> first_link_;  ///< per node, offset into arc array
  std::vector<NodeId> link_from_;        ///< per directed link, source node
  std::vector<double> bandwidth_;        ///< per directed link
  std::vector<bool> offchip_;
  std::vector<std::int32_t> dim_port_;   ///< (v * num_dims_ + dim) -> port, -1 if absent
  std::size_t num_dims_ = 0;
};

}  // namespace ipg::sim
