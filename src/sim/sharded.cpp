// Engine::kSharded — conservative-window parallel event processing.
// Design notes in sim/sharded.hpp; the window/barrier protocol here replays
// exactly the sequential engines' canonical (time, seq) event order, which
// is what makes every SimResult field bit-identical across engines, domain
// counts, and thread counts (test_sim_sharded pins this).

#include "sim/sharded.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "sim/event_heap.hpp"
#include "sim/observer.hpp"
#include "topology/domain_cut.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ipg::sim::detail {
namespace {

constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};
constexpr double kInf = std::numeric_limits<double>::infinity();

/// One observable effect of a processed event, buffered by the domain that
/// produced it (in its local pop order, so already sorted by (key, seq))
/// and replayed serially at the barrier after a K-way merge. Deliveries are
/// always buffered — LatencyHistogram folds samples in arrival order, and
/// floating-point accumulation only reproduces the sequential engines'
/// bits when replayed in the same order. The observer-only kinds are
/// buffered only when an observer is attached.
struct Rec {
  enum Kind : std::uint8_t { kDeliver, kHop, kDetour, kRetry, kDrop };
  std::uint64_t key = 0;  ///< the popped event's time bits
  std::uint32_t seq = 0;  ///< the popped event's identity-derived seq
  Kind kind = kDeliver;
  bool offchip = false;          // kHop
  std::uint16_t route_hops = 0;  // kDetour: adopted route length
  std::uint32_t pid = 0;
  NodeId node = 0;  ///< deliver: dst | hop: from | detour/drop: at | retry: src
  NodeId to = 0;              // kHop
  std::uint32_t attempt = 0;  // kRetry
  LinkId link = 0;            // kHop
  double d0 = 0;  ///< deliver: inject_time | hop: start | retry: resume
  double d1 = 0;  // kHop: tail_departure
  double d2 = 0;  // kHop: arrival
};

void apply_rec(const Rec& r, EngineStats& stats, SimObserver* obs) {
  const double time = std::bit_cast<double>(r.key);
  switch (r.kind) {
    case Rec::kDeliver:
      record_delivery(stats, obs, r.pid, r.node, time, r.d0);
      break;
    case Rec::kHop:
      obs->on_hop({r.pid, r.node, r.to, r.link, r.d0, r.d1, r.d2, r.offchip});
      break;
    case Rec::kDetour:
      obs->on_detour(r.pid, r.node, time, r.route_hops);
      break;
    case Rec::kRetry:
      obs->on_retry(r.pid, r.attempt, r.node, time, r.d0);
      break;
    case Rec::kDrop:
      obs->on_drop(r.pid, r.node, time);
      break;
  }
}

/// Globally-ordered (time, seq) position: the commit frontier of a barrier
/// is the earliest unprocessed event across all domains, and record replay
/// applies exactly the records strictly before it.
struct KeySeq {
  std::uint64_t key = kNoEvent;
  std::uint32_t seq = ~std::uint32_t{0};
};

bool operator<(const KeySeq& a, const KeySeq& b) {
  return a.key < b.key || (a.key == b.key && a.seq < b.seq);
}

constexpr KeySeq kFrontierEnd{kNoEvent, ~std::uint32_t{0}};

/// Serial barrier replay: K-way merge of the domains' record buffers by
/// (key, seq). Equal (key, seq) across domains cannot collide — a packet
/// lives in exactly one domain per window and its seq embeds its id — and
/// within a domain equal pairs (a detour and its hop) stay adjacent because
/// the scan prefers the earliest domain position at ties.
///
/// Only records strictly before @p frontier (the earliest still-unprocessed
/// event) are applied; the rest stay buffered. With unbounded buffers every
/// record is always below the frontier, but a bounded-buffer window can
/// stall on a missing credit, leaving other domains' records *after* the
/// stalled event — applying those early would replay deliveries and
/// observer hooks out of the sequential order. Each buffer is sorted (a
/// domain's events pop in nondecreasing (key, seq) order across windows of
/// either mode), so a record at or past the frontier ends that buffer's
/// scan.
template <typename Domain>
void replay_window(std::vector<Domain>& doms, EngineStats& stats,
                   SimObserver* obs, const KeySeq& frontier) {
  std::vector<std::size_t> pos(doms.size(), 0);
  for (;;) {
    std::size_t best = doms.size();
    for (std::size_t d = 0; d < doms.size(); ++d) {
      if (pos[d] >= doms[d].recs.size()) continue;
      const Rec& r = doms[d].recs[pos[d]];
      if (!(KeySeq{r.key, r.seq} < frontier)) continue;
      if (best == doms.size()) {
        best = d;
        continue;
      }
      const Rec& b = doms[best].recs[pos[best]];
      if (r.key < b.key || (r.key == b.key && r.seq < b.seq)) best = d;
    }
    if (best == doms.size()) break;
    apply_rec(doms[best].recs[pos[best]++], stats, obs);
  }
  for (std::size_t d = 0; d < doms.size(); ++d) {
    doms[d].recs.erase(doms[d].recs.begin(),
                       doms[d].recs.begin() +
                           static_cast<std::ptrdiff_t>(pos[d]));
  }
}

/// Domain count for a run: the explicit knob, else the process thread
/// pool's size, never more than one domain per node.
std::size_t resolve_domains(const SimNetwork& net, const SimConfig& cfg) {
  std::size_t k = cfg.shard_domains > 0 ? cfg.shard_domains
                                        : util::ThreadPool::global().size();
  if (k < 1) k = 1;
  return std::min(k, net.num_nodes());
}

/// Conservative lookahead: the least simulated time by which an event in
/// one domain can schedule an event in another. Crossing a domain boundary
/// always rides a link (arrival >= start + min(1, len) * inv_bandwidth +
/// latency for both switching modes), and with retries enabled a failed
/// packet may be rescheduled at a cross-domain source after just the base
/// backoff delay. +infinity when no link crosses the cut (K == 1): one
/// window covers the whole run.
double cross_lookahead(const SimNetwork& net, const std::vector<LinkHot>& links,
                       const std::vector<std::uint32_t>& domain_of,
                       const SimConfig& cfg) {
  double min_inv = kInf;
  for (LinkId l = 0; l < net.num_links(); ++l) {
    if (domain_of[net.link_from(l)] != domain_of[links[l].to]) {
      min_inv = std::min(min_inv, links[l].inv_bandwidth);
    }
  }
  if (!std::isfinite(min_inv)) return kInf;
  double la = cfg.link_latency_cycles +
              min_inv * std::min(1.0, cfg.packet_length_flits);
  if (cfg.max_retries > 0) la = std::min(la, cfg.retry_backoff_cycles);
  return la;
}

/// End of the window starting at @p m_time: m + lookahead, nudged up one
/// ulp when the sum absorbs (times so large that m + la == m) so every
/// window still makes progress. The mailbox drain cross-checks arrivals
/// against this bound, so absorption can degrade speed but never
/// correctness.
double window_end(double m_time, double lookahead) {
  double w = std::isfinite(lookahead) ? m_time + lookahead : kInf;
  if (!(w > m_time)) w = std::nextafter(m_time, kInf);
  return w;
}

/// Runs K domain closures, on the process pool when it helps, inline when
/// the pool could not (single worker) or must not (already inside a pool
/// worker — a sharded run inside a sweep job stays sequential rather than
/// deadlocking on its own pool). The inline path is also the K == 1 path,
/// so results never depend on which executor ran.
template <typename Body>
void run_domains(std::size_t k, Body&& body) {
  util::ThreadPool& pool = util::ThreadPool::global();
  if (k == 1 || pool.size() == 1 || util::ThreadPool::in_worker()) {
    for (std::size_t d = 0; d < k; ++d) body(d);
    return;
  }
  std::vector<std::exception_ptr> errors(k);
  for (std::size_t d = 0; d < k; ++d) {
    pool.submit([&body, &errors, d] {
      try {
        body(d);
      } catch (...) {
        errors[d] = std::current_exception();
      }
    });
  }
  pool.wait();
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

// ---------------------------------------------------------------------------
// Bounded-buffer backpressure under sharding: the credit protocol.
//
// A *boundary* node has an in-neighbor in another domain, so its occupancy
// is cross-domain state. Claims on non-boundary nodes are always made by
// the owning domain (if the upstream node were foreign the node would be a
// boundary node), so those run the sequential park/wake logic verbatim on
// the authoritative occupancy/waiting arrays with no sharing.
//
// Boundary nodes are governed by three rules that together reproduce the
// sequential admission order exactly:
//
//  1. Order-independent grants. Claims on a boundary node are gated by
//     per-domain credits granted at the barriers under the invariant
//       committed occupancy + uncommitted claims + outstanding credits
//         <= cap,
//     so a credit-backed claim is admitted under *every* interleaving of
//     the credit-backed claims — the sequential engine, whatever order it
//     processed them in, had headroom for each one too, and which domain
//     physically claimed first cannot matter. A claim finding no credit
//     *stalls* its domain (re-queues the event, ends the window early):
//     past this point admission depends on order, and only the barrier has
//     the global view to decide it.
//  2. Claim floors. A credit alone is not enough: an *earlier* (time, seq)
//     claim by another domain might stall this very window, and the
//     sequential engine serves that one first — its admission shifts the
//     occupancy every later claim sees. So a claim may also proceed only
//     when it is strictly below every other claimant domain's floor (that
//     domain's next-event (time, seq) at the window start, a lower bound
//     on any claim it can still make — see compute_claim_floors). Below
//     the floor no earlier competitor can exist anywhere; at or above it
//     the domain stalls and the barrier orders the contenders by their
//     exact stamps.
//  3. Frontier-committed occupancy. Boundary claims and frees are logged
//     with the (time, seq) of the event that performed them and merged
//     into one pending list at the barrier; an entry commits into the
//     authoritative occupancy only when the commit frontier (the earliest
//     still-unprocessed event) passes it — the same discipline record
//     replay follows. A stalled claim re-examined at the barrier therefore
//     sees exactly the occupancy the sequential engine saw at its
//     (time, seq), not a window-granular fold polluted by claims that
//     sequentially happen later.
//
// At the barrier a stalled node first reclaims the credits other domains
// are sitting on; if headroom exists at the frontier the staller is
// re-granted first and parallel windows resume. When the node is full even
// at the frontier — the sequential engine parks there — the next window
// runs *serially*: one coordinator pops the global (time, seq) minimum
// across every domain, interleaves still-pending log entries at their
// exact positions (committing a free wakes the front waiter, just as the
// sequential free event would), and executes the sequential loop body
// verbatim, parking and waking through the shared waiting lists, until no
// boundary waiting list is occupied and parallel windows resume. Serial
// windows bypass the credit system, so on entry every outstanding credit
// is cancelled and re-granted at the next parallel transition.
// ---------------------------------------------------------------------------

/// One boundary claim (+1) or free (-1), stamped with the (key, seq) of
/// the event that performed it so it commits in exact global order.
struct BufDelta {
  std::uint64_t key;
  std::uint32_t seq;
  NodeId node;
  std::int32_t delta;
};

bool delta_less(const BufDelta& a, const BufDelta& b) {
  return KeySeq{a.key, a.seq} < KeySeq{b.key, b.seq};
}
struct BufferState {
  std::size_t cap = 0;  ///< cfg.node_buffer_packets; 0 disables everything
  /// Authoritative occupancy *at the commit frontier*. Non-boundary
  /// entries are updated live by the owning domain; boundary entries
  /// advance only as pending deltas commit.
  std::vector<std::int64_t> occupancy;
  std::vector<std::deque<std::uint32_t>> waiting;
  std::vector<std::uint8_t> boundary;  ///< has an in-neighbor in another domain
  /// Boundary nodes only: domains owning at least one in-neighbor.
  std::vector<std::vector<std::uint32_t>> claimants;
  /// Boundary claims logged but not yet committed: occupancy the frontier
  /// has not reached, still counted against grantable headroom.
  std::vector<std::int64_t> pending_claims;
  std::vector<std::int64_t> outstanding;  ///< granted, not yet consumed
  std::vector<std::uint32_t> rotation;    ///< grant fairness cursor
  std::vector<std::uint8_t> queued;       ///< node already on the regrant list
  std::vector<NodeId> regrant;            ///< nodes whose headroom changed
  std::vector<std::uint8_t> has_grant;    ///< node on the granted list
  std::vector<NodeId> granted;            ///< nodes with outstanding credits
  /// Logged-but-uncommitted boundary deltas, (key, seq)-sorted; the prefix
  /// below pending_pos is committed and reclaimed at the next fold.
  std::vector<BufDelta> pending;
  std::size_t pending_pos = 0;
  /// Claim floors, recomputed before each parallel window (see
  /// compute_claim_floors): smallest and second-smallest next-event
  /// (key, seq) over a node's claimant domains, plus which domain holds
  /// the smallest.
  std::vector<KeySeq> floor_min;
  std::vector<KeySeq> floor_second;
  std::vector<std::uint32_t> floor_owner;
  std::size_t boundary_parked = 0;  ///< packets parked at boundary nodes

  bool enabled() const { return cap > 0; }
  std::int64_t icap() const { return static_cast<std::int64_t>(cap); }
  /// Smallest (key, seq) any *other* claimant domain could still claim at
  /// this window; a claim strictly below it has no earlier competitor.
  KeySeq claim_floor(NodeId n, std::uint32_t dom) const {
    return floor_owner[n] == dom ? floor_second[n] : floor_min[n];
  }
  /// Upper bound on the node's occupancy under any interleaving of the
  /// uncommitted claims (pending frees only ever add headroom).
  std::int64_t occ_max(NodeId n) const {
    return occupancy[n] + pending_claims[n];
  }
  const BufDelta* next_pending() const {
    return pending_pos < pending.size() ? &pending[pending_pos] : nullptr;
  }
};

BufferState make_buffer_state(const SimNetwork& net,
                              const std::vector<LinkHot>& links,
                              const std::vector<std::uint32_t>& domain_of,
                              std::size_t cap) {
  BufferState buf;
  buf.cap = cap;
  if (cap == 0) return buf;
  const std::size_t n = net.num_nodes();
  buf.occupancy.assign(n, 0);
  buf.waiting.assign(n, {});
  buf.boundary.assign(n, 0);
  buf.claimants.assign(n, {});
  buf.pending_claims.assign(n, 0);
  buf.outstanding.assign(n, 0);
  buf.floor_min.assign(n, kFrontierEnd);
  buf.floor_second.assign(n, kFrontierEnd);
  buf.floor_owner.assign(n, 0);
  buf.rotation.assign(n, 0);
  buf.queued.assign(n, 0);
  buf.has_grant.assign(n, 0);
  for (LinkId l = 0; l < net.num_links(); ++l) {
    const NodeId to = links[l].to;
    const std::uint32_t du = domain_of[net.link_from(l)];
    std::vector<std::uint32_t>& cl = buf.claimants[to];
    if (std::find(cl.begin(), cl.end(), du) == cl.end()) cl.push_back(du);
    if (du != domain_of[to]) buf.boundary[to] = 1;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (buf.boundary[v] != 0) {
      buf.regrant.push_back(v);  // initial grant at the first barrier
      buf.queued[v] = 1;
    } else {
      buf.claimants[v].clear();  // credits never gate non-boundary claims
    }
  }
  return buf;
}

/// Zeroes every domain's credits for @p node and queues it for re-grant.
template <typename Dom>
void cancel_node_credits(BufferState& buf, std::vector<Dom>& doms,
                         NodeId node) {
  for (Dom& d : doms) d.credits[node] = 0;
  buf.outstanding[node] = 0;
  if (buf.queued[node] == 0) {
    buf.queued[node] = 1;
    buf.regrant.push_back(node);
  }
}

/// Distributes each queued node's headroom over its claimant domains, a
/// stalled claimant first, then round-robin from a per-node rotation cursor
/// so repeated contention stays fair. Headroom is measured against occ_max
/// (committed occupancy plus uncommitted claims) so the grant invariant —
/// occ_max + outstanding <= cap — holds and every credit-backed claim is
/// admissible under any interleaving.
template <typename Dom>
void regrant_credits(BufferState& buf, std::vector<Dom>& doms,
                     const std::vector<std::pair<std::uint32_t, NodeId>>&
                         stalls) {
  for (const NodeId node : buf.regrant) {
    buf.queued[node] = 0;
    const std::vector<std::uint32_t>& cl = buf.claimants[node];
    if (cl.empty()) continue;
    const std::int64_t avail =
        buf.icap() - buf.occ_max(node) - buf.outstanding[node];
    if (avail <= 0) continue;
    std::size_t start = buf.rotation[node] % cl.size();
    for (std::size_t i = 0; i < cl.size(); ++i) {
      const std::size_t idx = (start + i) % cl.size();
      const bool is_stalled =
          std::any_of(stalls.begin(), stalls.end(), [&](const auto& s) {
            return s.first == cl[idx] && s.second == node;
          });
      if (is_stalled) {
        start = idx;
        break;
      }
    }
    buf.rotation[node] = static_cast<std::uint32_t>(start + 1);
    const std::int64_t share = avail / static_cast<std::int64_t>(cl.size());
    std::int64_t rem = avail % static_cast<std::int64_t>(cl.size());
    for (std::size_t i = 0; i < cl.size(); ++i) {
      const std::size_t idx = (start + i) % cl.size();
      std::int64_t amount = share;
      if (rem > 0) {
        ++amount;
        --rem;
      }
      doms[cl[idx]].credits[node] +=
          static_cast<std::uint32_t>(amount);
    }
    buf.outstanding[node] += avail;
    if (buf.has_grant[node] == 0) {
      buf.has_grant[node] = 1;
      buf.granted.push_back(node);
    }
  }
  buf.regrant.clear();
}

/// Merges the window's per-domain boundary logs into the pending delta
/// list (each log is already (key, seq)-sorted — its domain popped events
/// in canonical order) and collects the window's stalls. A claim's credit
/// is spent here — outstanding flows into pending_claims, so the grant
/// invariant's occ_max + outstanding bound is unchanged — but the
/// authoritative occupancy waits for the commit frontier.
template <typename Dom>
std::vector<std::pair<std::uint32_t, NodeId>> fold_buffer_logs(
    BufferState& buf, std::vector<Dom>& doms) {
  std::vector<std::pair<std::uint32_t, NodeId>> stalls;
  if (!buf.enabled()) return stalls;
  if (buf.pending_pos > 0) {  // reclaim the committed prefix
    buf.pending.erase(
        buf.pending.begin(),
        buf.pending.begin() + static_cast<std::ptrdiff_t>(buf.pending_pos));
    buf.pending_pos = 0;
  }
  const std::ptrdiff_t old_size =
      static_cast<std::ptrdiff_t>(buf.pending.size());
  for (Dom& d : doms) {
    for (const BufDelta& e : d.buf_log) {
      if (e.delta > 0) {
        --buf.outstanding[e.node];
        ++buf.pending_claims[e.node];
      }
      buf.pending.push_back(e);
    }
    d.buf_log.clear();
  }
  // Equal (key, seq) stamps can only be frees of the same node (claim seqs
  // embed the claiming packet's id), which commute; stable sort + stable
  // merge keep the commit order deterministic anyway.
  std::stable_sort(buf.pending.begin() + old_size, buf.pending.end(),
                   delta_less);
  std::inplace_merge(buf.pending.begin(), buf.pending.begin() + old_size,
                     buf.pending.end(), delta_less);
  for (std::uint32_t d = 0; d < doms.size(); ++d) {
    if (doms[d].stalled != topology::kInvalidNode) {
      stalls.emplace_back(d, doms[d].stalled);
      doms[d].stalled = topology::kInvalidNode;
    }
  }
  return stalls;
}

/// Wake event for a packet popped off a waiting list: the healthy engine's
/// events carry the packet state in-line, the degraded engine's do not.
inline Event make_wake_event(const std::vector<FlatPacket>& packets,
                             std::uint32_t wpid, std::uint64_t key) {
  const FlatPacket& p = packets[wpid];
  return Event{key,  Event::kPacketSeqBase + wpid, wpid,
               p.at, p.cursor,                     p.hops_left,
               p.route_len};
}
inline Event make_wake_event(const std::vector<FaultPacket>& /*packets*/,
                             std::uint32_t wpid, std::uint64_t key) {
  return Event{key, Event::kPacketSeqBase + wpid, wpid};
}

/// Commits one pending boundary delta at the frontier. A claim turns
/// pending occupancy into committed occupancy; a free releases the slot
/// and wakes the front waiter exactly as the sequential free event would
/// (the event itself was consumed by the window that logged the delta).
/// The wake is pushed into the domain owning the packet's current node.
template <typename Dom, typename Packet>
void apply_buffer_delta(BufferState& buf, std::vector<Dom>& doms,
                        const std::vector<Packet>& packets,
                        const std::vector<std::uint32_t>& domain_of,
                        const BufDelta& e) {
  if (e.delta > 0) {
    ++buf.occupancy[e.node];
    --buf.pending_claims[e.node];
    return;
  }
  --buf.occupancy[e.node];
  if (!buf.waiting[e.node].empty()) {
    const std::uint32_t wpid = buf.waiting[e.node].front();
    buf.waiting[e.node].pop_front();
    --buf.boundary_parked;  // deltas are logged for boundary nodes only
    doms[domain_of[packets[wpid].at]].events.push(
        make_wake_event(packets, wpid, e.key));
  }
  if (buf.queued[e.node] == 0) {  // headroom changed; revisit grants
    buf.queued[e.node] = 1;
    buf.regrant.push_back(e.node);
  }
}

/// Decides the next window's mode and (re-)grants credits. Serial when a
/// parked packet occupies a boundary waiting list (wakes must interleave
/// in exact global order) or a stalled node is still full at the commit
/// frontier (the sequential engine parks there). On a serial transition
/// all outstanding credits are cancelled; otherwise freed headroom is
/// re-granted, the window's stallers first.
template <typename Dom>
bool resolve_buffer_mode(
    BufferState& buf, std::vector<Dom>& doms,
    const std::vector<std::pair<std::uint32_t, NodeId>>& stalls) {
  if (!buf.enabled()) return false;
  bool serial = buf.boundary_parked > 0;
  for (const std::pair<std::uint32_t, NodeId>& s : stalls) {
    // Reclaim credits other domains are sitting on; if the node is full
    // even then, the stalled claim is a genuine sequential park.
    cancel_node_credits(buf, doms, s.second);
    if (buf.occ_max(s.second) >= buf.icap()) serial = true;
  }
  if (serial) {
    for (const NodeId node : buf.granted) {
      buf.has_grant[node] = 0;
      cancel_node_credits(buf, doms, node);
    }
    buf.granted.clear();
    return true;
  }
  regrant_credits(buf, doms, stalls);
  return false;
}

// ---------------------------------------------------------------------------
// Healthy sharded run (no faults, no cutoff).
// ---------------------------------------------------------------------------

template <typename Queue>
struct HealthyDomain {
  Queue events;
  std::vector<std::uint32_t> order;  ///< owned slice of the injection order
  std::size_t next_inject = 0;
  std::vector<Rec> recs;
  std::size_t hops = 0;
  std::size_t offchip_hops = 0;
  std::vector<std::vector<Event>> outbox;  ///< one per destination domain
  // Bounded-buffer state (cfg.node_buffer_packets > 0), see BufferState.
  std::vector<std::uint32_t> credits;  ///< per boundary node, spent on claim
  std::vector<BufDelta> buf_log;       ///< stamped boundary claims/frees
  NodeId stalled = topology::kInvalidNode;  ///< window ended out of credits

  HealthyDomain(const Queue& proto, std::size_t k) : events(proto), outbox(k) {}
};

/// Earliest pending (time, seq) in this domain — queued events merged with
/// its not-yet-streamed injections — or kFrontierEnd when idle.
template <typename Queue, typename Packet>
KeySeq next_key_seq(Queue& events, std::size_t next_inject,
                    const std::vector<std::uint32_t>& order,
                    const std::vector<Packet>& packets) {
  KeySeq ks;
  if (!events.empty()) ks = {events.top().key, events.top().seq};
  if (next_inject < order.size()) {
    const std::uint32_t pid = order[next_inject];
    const KeySeq inject{Event::key_of(packets[pid].inject_time),
                        Event::kPacketSeqBase + pid};
    if (inject < ks) ks = inject;
  }
  return ks;
}

/// Recomputes, for every boundary node with granted credits, the smallest
/// and second-smallest next-event (key, seq) over its claimant domains at
/// the window start. A domain's in-window claims are all stamped at or
/// after its own floor (event pops are ordered and pushes never precede
/// the event creating them), so a credit-backed claim *strictly below*
/// every other claimant's floor provably has no earlier competing claim —
/// admitted, stalled, or parked — anywhere in the system, and admitting it
/// is order-independent. At or above the floor the claim stalls: an
/// earlier foreign claim might stall on exhausted credits this window, and
/// sequentially that claim is served first. Called before every parallel
/// window; serial windows order claims directly and need no floors.
template <typename Dom, typename Packet>
void compute_claim_floors(BufferState& buf, std::vector<Dom>& doms,
                          const std::vector<Packet>& packets) {
  if (!buf.enabled() || buf.granted.empty()) return;
  std::vector<KeySeq> dom_floor(doms.size());
  for (std::size_t d = 0; d < doms.size(); ++d) {
    dom_floor[d] = next_key_seq(doms[d].events, doms[d].next_inject,
                                doms[d].order, packets);
  }
  for (const NodeId node : buf.granted) {
    KeySeq lo = kFrontierEnd;
    KeySeq hi = kFrontierEnd;
    std::uint32_t owner = 0;
    for (const std::uint32_t d : buf.claimants[node]) {
      const KeySeq f = dom_floor[d];
      if (f < lo) {
        hi = lo;
        lo = f;
        owner = d;
      } else if (f < hi) {
        hi = f;
      }
    }
    buf.floor_min[node] = lo;
    buf.floor_second[node] = hi;
    buf.floor_owner[node] = owner;
  }
}

/// One domain's window [m, W): the arena engine's event loop verbatim
/// (same arithmetic, same order), stopping at w_key and diverting events
/// for other domains into the outbox. links is shared across domains but a
/// hop only touches links[l] for l leaving a node this domain owns; the
/// same ownership argument covers the bounded-buffer occupancy and waiting
/// entries of non-boundary nodes, while boundary-node claims go through
/// this domain's credits and are folded into the shared state only at the
/// barrier. A claim finding no credit re-queues its event and ends the
/// window (dom.stalled).
template <typename Queue>
void run_healthy_window(HealthyDomain<Queue>& dom, std::uint64_t w_key,
                        const SimNetwork& net, BufferState& buf,
                        std::vector<FlatPacket>& packets,
                        const std::uint16_t* route_ports,
                        std::vector<LinkHot>& links,
                        const std::vector<std::uint32_t>& domain_of,
                        std::uint32_t my_domain, const SimConfig& cfg,
                        bool record_hops) {
  const std::size_t* first_link = net.first_links();
  const double latency = cfg.link_latency_cycles;
  const bool store_and_forward = cfg.switching == Switching::kStoreAndForward;

  for (;;) {
    Event ev;
    if (dom.next_inject < dom.order.size()) {
      const std::uint32_t pid = dom.order[dom.next_inject];
      const FlatPacket& p = packets[pid];
      const Event inject{Event::key_of(p.inject_time),
                         Event::kPacketSeqBase + pid,
                         pid,
                         p.at,
                         p.cursor,
                         p.hops_left,
                         p.route_len};
      if (dom.events.empty() || inject < dom.events.top()) {
        if (inject.key >= w_key) break;
        ev = inject;
        ++dom.next_inject;
      } else {
        if (dom.events.top().key >= w_key) break;
        ev = dom.events.top();
        dom.events.pop();
      }
    } else if (!dom.events.empty()) {
      if (dom.events.top().key >= w_key) break;
      ev = dom.events.top();
      dom.events.pop();
    } else {
      break;
    }

    if (buf.enabled() && ev.is_free_buffer()) {
      const NodeId node = ev.id();
      if (buf.boundary[node] != 0) {
        // Committed into the shared occupancy as the frontier passes the
        // stamp. The wake check happens at commit (apply_buffer_delta), in
        // exact (key, seq) position relative to every other event.
        dom.buf_log.push_back(BufDelta{ev.key, ev.seq, node, -1});
      } else {
        --buf.occupancy[node];
        if (!buf.waiting[node].empty()) {
          const std::uint32_t wpid = buf.waiting[node].front();
          buf.waiting[node].pop_front();
          const FlatPacket& p = packets[wpid];
          dom.events.push({ev.key, Event::kPacketSeqBase + wpid, wpid, p.at,
                           p.cursor, p.hops_left, p.route_len});
        }
      }
      continue;
    }
    if (ev.hops_left == 0) {
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kDeliver;
      r.pid = ev.id();
      r.node = ev.at;
      r.d0 = packets[ev.id()].inject_time;
      dom.recs.push_back(r);
      continue;
    }
    const std::uint16_t port = route_ports[ev.cursor];
    const LinkId link_id = static_cast<LinkId>(first_link[ev.at] + port);
    LinkHot& link = links[link_id];
    const NodeId to = link.to;
    const bool last_hop = ev.hops_left == 1;

    if (buf.enabled() && !last_hop) {
      if (buf.boundary[to] != 0) {
        if (dom.credits[to] == 0 ||
            !(KeySeq{ev.key, ev.seq} < buf.claim_floor(to, my_domain))) {
          dom.events.push(ev);  // both queue types re-order stragglers
          dom.stalled = to;
          return;
        }
        --dom.credits[to];
        dom.buf_log.push_back(BufDelta{ev.key, ev.seq, to, 1});
      } else {
        if (buf.occupancy[to] >= buf.icap()) {
          FlatPacket& p = packets[ev.id()];
          p.at = ev.at;
          p.cursor = ev.cursor;
          p.hops_left = ev.hops_left;
          buf.waiting[to].push_back(ev.id());
          continue;
        }
        ++buf.occupancy[to];
      }
    }

    const double now = ev.time();
    const double start = std::max(now, link.busy_until);
    const double tail_departure = start + link.transfer;
    const double tail_arrival = tail_departure + latency;
    link.busy_until = tail_departure;
    link.busy_time += link.transfer;

    // The tail leaving ev.at frees the slot the packet held there. ev.at is
    // owned by this domain, so the free event is always a local push.
    if (buf.enabled() && ev.hops_left < ev.route_len) {
      dom.events.push({Event::key_of(tail_departure), ev.at,
                       ev.at | Event::kFreeBufferBit});
    }

    ++dom.hops;
    dom.offchip_hops += link.offchip;
    if (record_hops) {
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kHop;
      r.offchip = link.offchip != 0;
      r.pid = ev.id();
      r.node = ev.at;
      r.to = to;
      r.link = link_id;
      r.d0 = start;
      r.d1 = tail_departure;
      r.d2 = tail_arrival;
      dom.recs.push_back(r);
    }

    double ready_next;
    if (store_and_forward) {
      ready_next = tail_arrival;
    } else {
      const double head_arrival = start + link.inv_bandwidth + latency;
      ready_next = last_hop ? tail_arrival : head_arrival;
    }
    const Event nxt{Event::key_of(ready_next),
                    Event::kPacketSeqBase + ev.id(),
                    ev.id(),
                    to,
                    ev.cursor + 1,
                    static_cast<std::uint16_t>(ev.hops_left - 1),
                    ev.route_len};
    const std::uint32_t dst_dom = domain_of[to];
    if (dst_dom == my_domain) {
      dom.events.push(nxt);
    } else {
      dom.outbox[dst_dom].push_back(nxt);
    }
  }
}

/// Serial fallback window [m, W) for contended bounded-buffer phases: one
/// coordinator pops the global (time, seq) minimum across every domain's
/// queue and injection slice and executes the sequential arena body
/// verbatim — authoritative occupancy and waiting lists for *all* nodes,
/// parks and same-instant wakeups included — pushing successor events
/// directly into the owning domain's queue. Records still go through the
/// owning domain's buffer (appends stay (key, seq)-sorted because each
/// domain's events pop in global order here too) so the barrier replay is
/// oblivious to which mode produced them.
template <typename Queue>
void run_serial_window_flat(std::vector<HealthyDomain<Queue>>& doms,
                            std::uint64_t w_key, const SimNetwork& net,
                            BufferState& buf, std::vector<FlatPacket>& packets,
                            const std::uint16_t* route_ports,
                            std::vector<LinkHot>& links,
                            const std::vector<std::uint32_t>& domain_of,
                            const SimConfig& cfg, bool record_hops) {
  const std::size_t* first_link = net.first_links();
  const double latency = cfg.link_latency_cycles;
  const bool store_and_forward = cfg.switching == Switching::kStoreAndForward;

  for (;;) {
    std::size_t best = doms.size();
    bool best_inject = false;
    KeySeq bk = kFrontierEnd;
    for (std::size_t d = 0; d < doms.size(); ++d) {
      HealthyDomain<Queue>& dom = doms[d];
      if (!dom.events.empty()) {
        const KeySeq ks{dom.events.top().key, dom.events.top().seq};
        if (ks < bk) {
          bk = ks;
          best = d;
          best_inject = false;
        }
      }
      if (dom.next_inject < dom.order.size()) {
        const std::uint32_t pid = dom.order[dom.next_inject];
        const KeySeq ks{Event::key_of(packets[pid].inject_time),
                        Event::kPacketSeqBase + pid};
        if (ks < bk) {
          bk = ks;
          best = d;
          best_inject = true;
        }
      }
    }
    // A still-pending boundary delta earlier than every queued event acts
    // first — committing a free here can wake a parked packet into some
    // domain's queue, changing the minimum just computed.
    const BufDelta* pd = buf.next_pending();
    if (pd != nullptr && KeySeq{pd->key, pd->seq} < bk) {
      apply_buffer_delta(buf, doms, packets, domain_of, *pd);
      ++buf.pending_pos;
      continue;
    }
    if (best == doms.size() || bk.key >= w_key) break;
    HealthyDomain<Queue>& dom = doms[best];
    Event ev;
    if (best_inject) {
      const std::uint32_t pid = dom.order[dom.next_inject++];
      const FlatPacket& p = packets[pid];
      ev = Event{bk.key, Event::kPacketSeqBase + pid, pid,
                 p.at,   p.cursor,                    p.hops_left,
                 p.route_len};
    } else {
      ev = dom.events.top();
      dom.events.pop();
    }

    if (ev.is_free_buffer()) {
      const NodeId node = ev.id();
      --buf.occupancy[node];
      if (!buf.waiting[node].empty()) {
        const std::uint32_t wpid = buf.waiting[node].front();
        buf.waiting[node].pop_front();
        if (buf.boundary[node] != 0) --buf.boundary_parked;
        const FlatPacket& p = packets[wpid];
        doms[domain_of[p.at]].events.push({ev.key,
                                           Event::kPacketSeqBase + wpid, wpid,
                                           p.at, p.cursor, p.hops_left,
                                           p.route_len});
      }
      continue;
    }
    if (ev.hops_left == 0) {
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kDeliver;
      r.pid = ev.id();
      r.node = ev.at;
      r.d0 = packets[ev.id()].inject_time;
      dom.recs.push_back(r);
      continue;
    }
    const std::uint16_t port = route_ports[ev.cursor];
    const LinkId link_id = static_cast<LinkId>(first_link[ev.at] + port);
    LinkHot& link = links[link_id];
    const NodeId to = link.to;
    const bool last_hop = ev.hops_left == 1;

    if (!last_hop) {
      if (buf.occupancy[to] >= buf.icap()) {
        FlatPacket& p = packets[ev.id()];
        p.at = ev.at;
        p.cursor = ev.cursor;
        p.hops_left = ev.hops_left;
        buf.waiting[to].push_back(ev.id());
        if (buf.boundary[to] != 0) ++buf.boundary_parked;
        continue;
      }
      ++buf.occupancy[to];
    }

    const double now = ev.time();
    const double start = std::max(now, link.busy_until);
    const double tail_departure = start + link.transfer;
    const double tail_arrival = tail_departure + latency;
    link.busy_until = tail_departure;
    link.busy_time += link.transfer;

    if (ev.hops_left < ev.route_len) {
      dom.events.push({Event::key_of(tail_departure), ev.at,
                       ev.at | Event::kFreeBufferBit});
    }

    ++dom.hops;
    dom.offchip_hops += link.offchip;
    if (record_hops) {
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kHop;
      r.offchip = link.offchip != 0;
      r.pid = ev.id();
      r.node = ev.at;
      r.to = to;
      r.link = link_id;
      r.d0 = start;
      r.d1 = tail_departure;
      r.d2 = tail_arrival;
      dom.recs.push_back(r);
    }

    double ready_next;
    if (store_and_forward) {
      ready_next = tail_arrival;
    } else {
      const double head_arrival = start + link.inv_bandwidth + latency;
      ready_next = last_hop ? tail_arrival : head_arrival;
    }
    doms[domain_of[to]].events.push(
        {Event::key_of(ready_next), Event::kPacketSeqBase + ev.id(), ev.id(),
         to, ev.cursor + 1, static_cast<std::uint16_t>(ev.hops_left - 1),
         ev.route_len});
  }
}

template <typename Queue>
EngineStats run_sharded_flat_loop(const Queue& proto, const SimNetwork& net,
                                  std::vector<FlatPacket>& packets,
                                  const std::uint16_t* route_ports,
                                  std::vector<LinkHot>& links,
                                  const SimConfig& cfg,
                                  std::vector<double>& link_busy_until,
                                  std::vector<double>& link_busy_time) {
  const std::size_t k = resolve_domains(net, cfg);
  const topology::DomainCut cut = topology::make_domain_cut(net.chips(), k);
  const double lookahead = cross_lookahead(net, links, cut.domain_of, cfg);

  std::vector<HealthyDomain<Queue>> doms;
  doms.reserve(k);
  for (std::size_t d = 0; d < k; ++d) doms.emplace_back(proto, k);
  for (const std::uint32_t pid : injection_order(packets)) {
    doms[cut.domain_of[packets[pid].at]].order.push_back(pid);
  }
  BufferState buf =
      make_buffer_state(net, links, cut.domain_of, cfg.node_buffer_packets);
  if (buf.enabled()) {
    for (HealthyDomain<Queue>& d : doms) {
      d.credits.assign(net.num_nodes(), 0);
    }
  }

  EngineStats stats;
  stats.latency.reserve(packets.size());
  SimObserver* const obs = cfg.observer;
  const bool record_hops = obs != nullptr;

  std::uint64_t last_w_key = 0;
  for (;;) {
    // Serial barrier, part 1: drain cross-domain mailboxes. The drain also
    // proves the previous window honored its own lookahead bound — if
    // floating-point absorption ever produced an arrival inside the window
    // that emitted it, the run fails loudly instead of silently diverging
    // from the sequential order.
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b) {
        for (const Event& e : doms[a].outbox[b]) {
          IPG_CHECK(e.key >= last_w_key,
                    "sharded engine: cross-domain arrival inside its own "
                    "window (lookahead violated)");
          doms[b].events.push(e);
        }
        doms[a].outbox[b].clear();
      }
    }

    // Part 2: merge the window's boundary claim/free logs into the pending
    // delta list and collect the window's stalls.
    const std::vector<std::pair<std::uint32_t, NodeId>> stalls =
        fold_buffer_logs(buf, doms);

    // Part 3: advance the commit frontier and replay. A stalled domain
    // stops short of W while the others ran to it, so only deltas and
    // records strictly before the earliest still-unprocessed event may be
    // applied; the rest stay buffered for a later barrier. Committing a
    // free can wake a parked packet — a new, possibly earlier event — so
    // the frontier is re-evaluated after every commit. Without stalls the
    // frontier is past every buffered record and this is a full flush.
    KeySeq frontier = kFrontierEnd;
    for (;;) {
      frontier = kFrontierEnd;
      for (HealthyDomain<Queue>& d : doms) {
        const KeySeq ks =
            next_key_seq(d.events, d.next_inject, d.order, packets);
        if (ks < frontier) frontier = ks;
      }
      const BufDelta* pd = buf.next_pending();
      if (pd == nullptr || !(KeySeq{pd->key, pd->seq} < frontier)) break;
      apply_buffer_delta(buf, doms, packets, cut.domain_of, *pd);
      ++buf.pending_pos;
    }
    replay_window(doms, stats, obs, frontier);
    if (frontier.key == kNoEvent) break;

    const double m_time = std::bit_cast<double>(frontier.key);
    const double w = window_end(m_time, lookahead);
    const std::uint64_t w_key = Event::key_of(w);
    last_w_key = w_key;

    // Part 4: settle stalls against frontier-exact occupancy and pick the
    // next window's mode.
    const bool serial = resolve_buffer_mode(buf, doms, stalls);

    if (serial) {
      run_serial_window_flat(doms, w_key, net, buf, packets, route_ports,
                             links, cut.domain_of, cfg, record_hops);
    } else {
      compute_claim_floors(buf, doms, packets);
      run_domains(k, [&](std::size_t d) {
        run_healthy_window(doms[d], w_key, net, buf, packets, route_ports,
                           links, cut.domain_of, static_cast<std::uint32_t>(d),
                           cfg, record_hops);
      });
    }
  }

  for (LinkId l = 0; l < links.size(); ++l) {
    link_busy_until[l] = links[l].busy_until;
    link_busy_time[l] = links[l].busy_time;
  }
  stats.injected = packets.size();
  for (const HealthyDomain<Queue>& d : doms) {
    stats.hops += d.hops;
    stats.offchip_hops += d.offchip_hops;
  }
  if (stats.delivered != packets.size()) {
    // Only reachable under bounded buffers: every park funnels through
    // buf.waiting (parallel windows park locally, serial windows park
    // globally), so the cycle report sees the same waiting lists the
    // sequential engines would have built.
    fail_with_deadlock_cycle(buf.waiting, [&](std::uint32_t pid) {
      return packets[pid].at;
    });
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Degraded-mode sharded run (fault plan and/or max_cycles cutoff).
// ---------------------------------------------------------------------------

template <typename Queue>
struct FaultyDomain {
  Queue events;
  FaultRoutes routes;  ///< private memo shard keyed by route source
  std::vector<std::uint32_t> order;
  std::size_t next_inject = 0;
  std::vector<Rec> recs;
  std::size_t hops = 0;
  std::size_t offchip_hops = 0;
  std::size_t dropped = 0;
  std::size_t retransmitted = 0;
  std::size_t reroute_hops = 0;
  std::vector<std::vector<Event>> outbox;
  // Bounded-buffer state (cfg.node_buffer_packets > 0), see BufferState.
  std::vector<std::uint32_t> credits;
  std::vector<BufDelta> buf_log;  ///< stamped boundary claims/frees
  NodeId stalled = topology::kInvalidNode;

  FaultyDomain(const Queue& proto, const FaultCore& core, const Router& route,
               std::size_t k)
      : events(proto), routes(core, route), outbox(k) {}
};

/// One domain's degraded window [m, W): the fault-aware loop body verbatim
/// minus fault application — W never crosses the next plan event, so the
/// usability bits read from the shared core are constant for the whole
/// window. Bounded buffers follow the same credit protocol as the healthy
/// window; a stall is safe even mid-event because everything that can
/// mutate before the claim (routing, a detour adoption, its Rec) is
/// idempotent on re-processing: p.routed stays set, the adopted route's
/// first hop is usable, and no new fault at or before the event's time can
/// apply in between.
template <typename Queue>
void run_faulty_window(FaultyDomain<Queue>& dom, std::uint64_t w_key,
                       const SimNetwork& net, const FaultCore& core,
                       BufferState& buf, std::vector<FaultPacket>& packets,
                       std::vector<LinkHot>& links,
                       const std::vector<std::uint32_t>& domain_of,
                       std::uint32_t my_domain, const SimConfig& cfg,
                       bool record_obs) {
  const std::size_t* first_link = net.first_links();
  const double latency = cfg.link_latency_cycles;
  const bool store_and_forward = cfg.switching == Switching::kStoreAndForward;

  const auto push_event = [&](const Event& e, NodeId at_node) {
    const std::uint32_t dd = domain_of[at_node];
    if (dd == my_domain) {
      dom.events.push(e);
    } else {
      dom.outbox[dd].push_back(e);
    }
  };

  const auto fail_packet = [&](std::uint32_t pid, const Event& ev,
                               double now) {
    FaultPacket& p = packets[pid];
    if (buf.enabled() && p.moved) {
      // Frees the slot the packet holds at its current node — always a
      // local push (the failing event is being processed at p.at).
      dom.events.push(Event{ev.key, p.at, p.at | Event::kFreeBufferBit});
      p.moved = false;
    }
    if (p.attempt < cfg.max_retries) {
      ++p.attempt;
      ++dom.retransmitted;
      p.at = p.src;
      p.routed = false;
      p.reroutes = 0;
      const double delay =
          retry_backoff_delay(cfg.retry_backoff_cycles, p.attempt);
      push_event(
          Event{Event::key_of(now + delay), Event::kPacketSeqBase + pid, pid},
          p.src);
      if (record_obs) {
        Rec r;
        r.key = ev.key;
        r.seq = ev.seq;
        r.kind = Rec::kRetry;
        r.pid = pid;
        r.node = p.src;
        r.attempt = p.attempt;
        r.d0 = now + delay;
        dom.recs.push_back(r);
      }
    } else {
      p.state = kDropped;
      ++dom.dropped;
      if (record_obs) {
        Rec r;
        r.key = ev.key;
        r.seq = ev.seq;
        r.kind = Rec::kDrop;
        r.pid = pid;
        r.node = p.at;
        dom.recs.push_back(r);
      }
    }
  };

  for (;;) {
    Event ev;
    if (dom.next_inject < dom.order.size()) {
      const std::uint32_t next_pid = dom.order[dom.next_inject];
      const Event inject{Event::key_of(packets[next_pid].inject_time),
                         Event::kPacketSeqBase + next_pid, next_pid};
      if (dom.events.empty() || inject < dom.events.top()) {
        if (inject.key >= w_key) break;
        ev = inject;
        ++dom.next_inject;
      } else {
        if (dom.events.top().key >= w_key) break;
        ev = dom.events.top();
        dom.events.pop();
      }
    } else if (!dom.events.empty()) {
      if (dom.events.top().key >= w_key) break;
      ev = dom.events.top();
      dom.events.pop();
    } else {
      break;
    }

    const double now = ev.time();
    if (buf.enabled() && ev.is_free_buffer()) {
      const NodeId node = ev.id();
      if (buf.boundary[node] != 0) {
        dom.buf_log.push_back(BufDelta{ev.key, ev.seq, node, -1});
      } else {
        --buf.occupancy[node];
        if (!buf.waiting[node].empty()) {
          const std::uint32_t wpid = buf.waiting[node].front();
          buf.waiting[node].pop_front();
          dom.events.push(Event{ev.key, Event::kPacketSeqBase + wpid, wpid});
        }
      }
      continue;
    }
    const std::uint32_t pid = ev.id();
    FaultPacket& p = packets[pid];
    if (!p.routed) {
      RouteRef ref;
      if (!dom.routes.route_from(p.at, p.dst, ref)) {
        fail_packet(pid, ev, now);
        continue;
      }
      p.routed = true;
      p.cursor = ref.offset;
      p.hops_left = ref.length;
    }
    if (p.hops_left == 0) {
      p.state = kDelivered;
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kDeliver;
      r.pid = pid;
      r.node = p.at;
      r.d0 = p.inject_time;
      dom.recs.push_back(r);
      continue;
    }

    std::uint16_t port = dom.routes.ports()[p.cursor];
    LinkId link_id = first_link[p.at] + port;
    if (!core.link_usable(link_id)) {
      RouteRef ref;
      if (p.reroutes >= cfg.misroute_budget ||
          !dom.routes.route_from(p.at, p.dst, ref)) {
        fail_packet(pid, ev, now);
        continue;
      }
      ++p.reroutes;
      if (ref.length > p.hops_left) {
        dom.reroute_hops += static_cast<std::size_t>(ref.length - p.hops_left);
      }
      p.cursor = ref.offset;
      p.hops_left = ref.length;
      port = dom.routes.ports()[p.cursor];
      link_id = first_link[p.at] + port;  // first hop is live by construction
      if (record_obs) {
        Rec r;
        r.key = ev.key;
        r.seq = ev.seq;
        r.kind = Rec::kDetour;
        r.route_hops = ref.length;
        r.pid = pid;
        r.node = p.at;
        dom.recs.push_back(r);
      }
    }

    LinkHot& link = links[link_id];
    const NodeId to = link.to;
    const bool last_hop = p.hops_left == 1;

    if (buf.enabled() && !last_hop) {
      if (buf.boundary[to] != 0) {
        if (dom.credits[to] == 0 ||
            !(KeySeq{ev.key, ev.seq} < buf.claim_floor(to, my_domain))) {
          dom.events.push(Event{ev.key, ev.seq, pid});
          dom.stalled = to;
          return;
        }
        --dom.credits[to];
        dom.buf_log.push_back(BufDelta{ev.key, ev.seq, to, 1});
      } else {
        if (buf.occupancy[to] >= buf.icap()) {
          buf.waiting[to].push_back(pid);
          continue;
        }
        ++buf.occupancy[to];
      }
    }

    const double start = std::max(now, link.busy_until);
    const double tail_departure = start + link.transfer;
    const double tail_arrival = tail_departure + latency;
    link.busy_until = tail_departure;
    link.busy_time += link.transfer;

    if (buf.enabled() && p.moved) {
      dom.events.push(Event{Event::key_of(tail_departure), p.at,
                            p.at | Event::kFreeBufferBit});
    }

    ++dom.hops;
    dom.offchip_hops += link.offchip;
    if (record_obs) {
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kHop;
      r.offchip = link.offchip != 0;
      r.pid = pid;
      r.node = p.at;
      r.to = to;
      r.link = static_cast<LinkId>(link_id);
      r.d0 = start;
      r.d1 = tail_departure;
      r.d2 = tail_arrival;
      dom.recs.push_back(r);
    }

    double ready_next;
    if (store_and_forward) {
      ready_next = tail_arrival;
    } else {
      const double head_arrival = start + link.inv_bandwidth + latency;
      ready_next = last_hop ? tail_arrival : head_arrival;
    }
    p.at = to;
    ++p.cursor;
    --p.hops_left;
    p.moved = !last_hop;
    push_event(
        Event{Event::key_of(ready_next), Event::kPacketSeqBase + pid, pid},
        to);
  }
}

/// Serial fallback window for contended bounded-buffer phases of a
/// degraded run: the sequential fault-aware body executed in global
/// (time, seq) order by one coordinator. Migrating routes are adopted into
/// the new owner's shard at push time (the coordinator owns every shard
/// here), and retries/frees/wakes push directly into the owning domain's
/// queue — zero-delay wakeups are legal because this window processes them
/// itself in exact order.
template <typename Queue>
void run_serial_window_faulty(std::vector<FaultyDomain<Queue>>& doms,
                              std::uint64_t w_key, const SimNetwork& net,
                              const FaultCore& core, BufferState& buf,
                              std::vector<FaultPacket>& packets,
                              std::vector<LinkHot>& links,
                              const std::vector<std::uint32_t>& domain_of,
                              const SimConfig& cfg, bool record_obs) {
  const std::size_t* first_link = net.first_links();
  const double latency = cfg.link_latency_cycles;
  const bool store_and_forward = cfg.switching == Switching::kStoreAndForward;

  for (;;) {
    std::size_t best = doms.size();
    bool best_inject = false;
    KeySeq bk = kFrontierEnd;
    for (std::size_t d = 0; d < doms.size(); ++d) {
      FaultyDomain<Queue>& dom = doms[d];
      if (!dom.events.empty()) {
        const KeySeq ks{dom.events.top().key, dom.events.top().seq};
        if (ks < bk) {
          bk = ks;
          best = d;
          best_inject = false;
        }
      }
      if (dom.next_inject < dom.order.size()) {
        const std::uint32_t ipid = dom.order[dom.next_inject];
        const KeySeq ks{Event::key_of(packets[ipid].inject_time),
                        Event::kPacketSeqBase + ipid};
        if (ks < bk) {
          bk = ks;
          best = d;
          best_inject = true;
        }
      }
    }
    // A still-pending boundary delta earlier than every queued event acts
    // first — committing a free here can wake a parked packet into some
    // domain's queue, changing the minimum just computed.
    const BufDelta* pd = buf.next_pending();
    if (pd != nullptr && KeySeq{pd->key, pd->seq} < bk) {
      apply_buffer_delta(buf, doms, packets, domain_of, *pd);
      ++buf.pending_pos;
      continue;
    }
    if (best == doms.size() || bk.key >= w_key) break;
    FaultyDomain<Queue>& dom = doms[best];
    Event ev;
    if (best_inject) {
      const std::uint32_t ipid = dom.order[dom.next_inject++];
      ev = Event{bk.key, Event::kPacketSeqBase + ipid, ipid};
    } else {
      ev = dom.events.top();
      dom.events.pop();
    }

    const double now = ev.time();
    if (ev.is_free_buffer()) {
      const NodeId node = ev.id();
      --buf.occupancy[node];
      if (!buf.waiting[node].empty()) {
        const std::uint32_t wpid = buf.waiting[node].front();
        buf.waiting[node].pop_front();
        if (buf.boundary[node] != 0) --buf.boundary_parked;
        doms[domain_of[packets[wpid].at]].events.push(
            Event{ev.key, Event::kPacketSeqBase + wpid, wpid});
      }
      continue;
    }

    const std::uint32_t pid = ev.id();
    FaultPacket& p = packets[pid];
    const auto fail_packet = [&]() {
      if (p.moved) {
        doms[domain_of[p.at]].events.push(
            Event{ev.key, p.at, p.at | Event::kFreeBufferBit});
        p.moved = false;
      }
      if (p.attempt < cfg.max_retries) {
        ++p.attempt;
        ++dom.retransmitted;
        p.at = p.src;
        p.routed = false;
        p.reroutes = 0;
        const double delay =
            retry_backoff_delay(cfg.retry_backoff_cycles, p.attempt);
        doms[domain_of[p.src]].events.push(Event{
            Event::key_of(now + delay), Event::kPacketSeqBase + pid, pid});
        if (record_obs) {
          Rec r;
          r.key = ev.key;
          r.seq = ev.seq;
          r.kind = Rec::kRetry;
          r.pid = pid;
          r.node = p.src;
          r.attempt = p.attempt;
          r.d0 = now + delay;
          dom.recs.push_back(r);
        }
      } else {
        p.state = kDropped;
        ++dom.dropped;
        if (record_obs) {
          Rec r;
          r.key = ev.key;
          r.seq = ev.seq;
          r.kind = Rec::kDrop;
          r.pid = pid;
          r.node = p.at;
          dom.recs.push_back(r);
        }
      }
    };

    if (!p.routed) {
      RouteRef ref;
      if (!dom.routes.route_from(p.at, p.dst, ref)) {
        fail_packet();
        continue;
      }
      p.routed = true;
      p.cursor = ref.offset;
      p.hops_left = ref.length;
    }
    if (p.hops_left == 0) {
      p.state = kDelivered;
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kDeliver;
      r.pid = pid;
      r.node = p.at;
      r.d0 = p.inject_time;
      dom.recs.push_back(r);
      continue;
    }

    std::uint16_t port = dom.routes.ports()[p.cursor];
    LinkId link_id = first_link[p.at] + port;
    if (!core.link_usable(link_id)) {
      RouteRef ref;
      if (p.reroutes >= cfg.misroute_budget ||
          !dom.routes.route_from(p.at, p.dst, ref)) {
        fail_packet();
        continue;
      }
      ++p.reroutes;
      if (ref.length > p.hops_left) {
        dom.reroute_hops += static_cast<std::size_t>(ref.length - p.hops_left);
      }
      p.cursor = ref.offset;
      p.hops_left = ref.length;
      port = dom.routes.ports()[p.cursor];
      link_id = first_link[p.at] + port;  // first hop is live by construction
      if (record_obs) {
        Rec r;
        r.key = ev.key;
        r.seq = ev.seq;
        r.kind = Rec::kDetour;
        r.route_hops = ref.length;
        r.pid = pid;
        r.node = p.at;
        dom.recs.push_back(r);
      }
    }

    LinkHot& link = links[link_id];
    const NodeId to = link.to;
    const bool last_hop = p.hops_left == 1;

    if (!last_hop) {
      if (buf.occupancy[to] >= buf.icap()) {
        buf.waiting[to].push_back(pid);
        if (buf.boundary[to] != 0) ++buf.boundary_parked;
        continue;
      }
      ++buf.occupancy[to];
    }

    const double start = std::max(now, link.busy_until);
    const double tail_departure = start + link.transfer;
    const double tail_arrival = tail_departure + latency;
    link.busy_until = tail_departure;
    link.busy_time += link.transfer;

    if (p.moved) {
      doms[domain_of[p.at]].events.push(Event{
          Event::key_of(tail_departure), p.at, p.at | Event::kFreeBufferBit});
    }

    ++dom.hops;
    dom.offchip_hops += link.offchip;
    if (record_obs) {
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kHop;
      r.offchip = link.offchip != 0;
      r.pid = pid;
      r.node = p.at;
      r.to = to;
      r.link = static_cast<LinkId>(link_id);
      r.d0 = start;
      r.d1 = tail_departure;
      r.d2 = tail_arrival;
      dom.recs.push_back(r);
    }

    double ready_next;
    if (store_and_forward) {
      ready_next = tail_arrival;
    } else {
      const double head_arrival = start + link.inv_bandwidth + latency;
      ready_next = last_hop ? tail_arrival : head_arrival;
    }
    p.at = to;
    ++p.cursor;
    --p.hops_left;
    p.moved = !last_hop;
    const std::uint32_t dd = domain_of[to];
    if (dd != best && p.hops_left > 0) {
      // Hand the remaining route over to the new owner's memo shard, as
      // the mailbox drain does for parallel windows.
      const std::uint16_t* src_ports = dom.routes.ports();
      p.cursor = doms[dd]
                     .routes
                     .adopt({src_ports + p.cursor, std::size_t{p.hops_left}})
                     .offset;
    }
    doms[dd].events.push(
        Event{Event::key_of(ready_next), Event::kPacketSeqBase + pid, pid});
  }
}

template <typename Queue>
EngineStats run_sharded_faulty_loop(const Queue& proto, const SimNetwork& net,
                                    const Router& route, const FaultPlan& plan,
                                    std::vector<FaultPacket>& packets,
                                    std::vector<LinkHot>& links,
                                    const SimConfig& cfg,
                                    std::span<const RoutedInjection> presets,
                                    std::span<const std::uint16_t> preset_ports,
                                    std::vector<double>& link_busy_until,
                                    std::vector<double>& link_busy_time) {
  const std::size_t k = resolve_domains(net, cfg);
  const topology::DomainCut cut = topology::make_domain_cut(net.chips(), k);
  const double lookahead = cross_lookahead(net, links, cut.domain_of, cfg);

  FaultCore core(net, plan);
  core.set_observer(cfg.observer);
  std::vector<FaultyDomain<Queue>> doms;
  doms.reserve(k);
  for (std::size_t d = 0; d < k; ++d) doms.emplace_back(proto, core, route, k);
  for (const std::uint32_t pid : injection_order(packets)) {
    doms[cut.domain_of[packets[pid].src]].order.push_back(pid);
  }
  // Preset routes (run_routed) land in the shard of the packet's source
  // domain — the domain that pops its injection event — exactly as if
  // route_from had produced them there. Setup is single-threaded, so this
  // append precedes the mutation fence below.
  for (std::uint32_t pid = 0; pid < presets.size(); ++pid) {
    if (presets[pid].route_length == 0) continue;
    FaultPacket& p = packets[pid];
    const RouteRef ref = doms[cut.domain_of[p.src]].routes.adopt(
        {preset_ports.data() + presets[pid].route_offset,
         std::size_t{presets[pid].route_length}});
    p.cursor = ref.offset;
    p.hops_left = ref.length;
    p.routed = true;
  }
  BufferState buf =
      make_buffer_state(net, links, cut.domain_of, cfg.node_buffer_packets);
  if (buf.enabled()) {
    for (FaultyDomain<Queue>& d : doms) {
      d.credits.assign(net.num_nodes(), 0);
    }
  }
  // Memo invalidation is only legal at the serial barriers below; the
  // windows themselves may append to their shard but never evict.
  for (FaultyDomain<Queue>& d : doms) d.routes.set_mutation_allowed(false);

  EngineStats stats;
  stats.latency.reserve(packets.size());
  SimObserver* const obs = cfg.observer;
  const bool record_obs = obs != nullptr;
  const double cutoff = cfg.max_cycles;
  bool cutoff_hit = false;

  std::uint64_t last_w_key = 0;
  for (;;) {
    // Serial barrier, part 1: drain mailboxes, handing each migrating
    // packet over to its new owner. A routed packet's remaining route is
    // copied out of the source domain's memo shard into the owner's, so
    // in-flight refs always resolve against the shard of the domain
    // processing them.
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b) {
        for (const Event& e : doms[a].outbox[b]) {
          IPG_CHECK(e.key >= last_w_key,
                    "sharded engine: cross-domain arrival inside its own "
                    "window (lookahead violated)");
          FaultPacket& p = packets[e.id()];
          if (p.routed && p.hops_left > 0) {
            const std::uint16_t* src_ports = doms[a].routes.ports();
            p.cursor =
                doms[b]
                    .routes
                    .adopt({src_ports + p.cursor, std::size_t{p.hops_left}})
                    .offset;
          }
          doms[b].events.push(e);
        }
        doms[a].outbox[b].clear();
      }
    }

    // Part 2: merge the window's boundary claim/free logs into the pending
    // delta list and collect the window's stalls.
    const std::vector<std::pair<std::uint32_t, NodeId>> stalls =
        fold_buffer_logs(buf, doms);

    // Part 3: advance the commit frontier and replay — before the cutoff
    // break (records for processed events must reach the observer even
    // when the run ends here) and before fault application (every buffered
    // record precedes any still-pending fault instant, because windows
    // never cross one). Committing a free can wake a parked packet — a
    // new, possibly earlier event — so the frontier is re-evaluated after
    // every commit.
    KeySeq frontier = kFrontierEnd;
    for (;;) {
      frontier = kFrontierEnd;
      for (FaultyDomain<Queue>& d : doms) {
        const KeySeq ks =
            next_key_seq(d.events, d.next_inject, d.order, packets);
        if (ks < frontier) frontier = ks;
      }
      const BufDelta* pd = buf.next_pending();
      if (pd == nullptr || !(KeySeq{pd->key, pd->seq} < frontier)) break;
      apply_buffer_delta(buf, doms, packets, cut.domain_of, *pd);
      ++buf.pending_pos;
    }
    replay_window(doms, stats, obs, frontier);
    if (frontier.key == kNoEvent) break;
    const double m_time = std::bit_cast<double>(frontier.key);
    if (cutoff > 0 && m_time > cutoff) {
      cutoff_hit = true;
      break;
    }

    // Part 4: apply every plan event with time <= m — exactly where the
    // sequential loop applies them (before the first event at or after the
    // fault instant), so on_fault lands at the same position in the
    // observer stream — then let each shard drop the memo entries the new
    // dead set invalidated.
    if (core.pending(m_time)) {
      const FaultCore::Applied applied = core.apply_until(m_time);
      for (FaultyDomain<Queue>& d : doms) {
        d.routes.set_mutation_allowed(true);
        d.routes.evict(applied.any_repair);
        d.routes.set_mutation_allowed(false);
      }
    }

    // The window may not cross the next plan event (usability bits must
    // stay constant) nor the cutoff boundary (events past it must not be
    // processed; one ulp above it keeps events exactly at the cutoff in,
    // matching the sequential `now > cutoff` break).
    double w = window_end(m_time, lookahead);
    w = std::min(w, core.next_fault_time());
    if (cutoff > 0) w = std::min(w, std::nextafter(cutoff, kInf));
    const std::uint64_t w_key = Event::key_of(w);
    last_w_key = w_key;

    // Part 5: settle stalls against frontier-exact occupancy and pick the
    // next window's mode.
    const bool serial = resolve_buffer_mode(buf, doms, stalls);

    if (serial) {
      run_serial_window_faulty(doms, w_key, net, core, buf, packets, links,
                               cut.domain_of, cfg, record_obs);
    } else {
      compute_claim_floors(buf, doms, packets);
      run_domains(k, [&](std::size_t d) {
        run_faulty_window(doms[d], w_key, net, core, buf, packets, links,
                          cut.domain_of, static_cast<std::uint32_t>(d), cfg,
                          record_obs);
      });
    }
  }

  for (LinkId l = 0; l < links.size(); ++l) {
    link_busy_until[l] = links[l].busy_until;
    link_busy_time[l] = links[l].busy_time;
  }
  stats.injected = packets.size();
  for (const FaultyDomain<Queue>& d : doms) {
    stats.hops += d.hops;
    stats.offchip_hops += d.offchip_hops;
    stats.dropped += d.dropped;
    stats.retransmitted += d.retransmitted;
    stats.reroute_hops += d.reroute_hops;
  }
  for (const FaultPacket& p : packets) {
    if (p.state == kActive) ++stats.in_flight;
  }
  if (stats.in_flight > 0 && !cutoff_hit) {
    fail_with_deadlock_cycle(buf.waiting, [&](std::uint32_t pid) {
      return packets[pid].at;
    });
  }
  IPG_CHECK(
      stats.delivered + stats.dropped + stats.in_flight == stats.injected,
      "packet conservation violated");
  stats.cutoff_hit = cutoff_hit;
  return stats;
}

}  // namespace

SimResult run_sharded_flat(const SimNetwork& net,
                           std::vector<FlatPacket>& packets,
                           const RouteArena& arena, const SimConfig& cfg) {
  IPG_CHECK(packets.size() < Event::kFreeBufferBit &&
                net.num_nodes() < Event::kFreeBufferBit,
            "packet/node ids must fit in 31 bits");
  std::vector<LinkHot> links = make_link_table(net, cfg);
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<double> busy_time(net.num_links(), 0.0);
  const int grid_bits = quantized_grid_bits(links, cfg, packets);
  EngineStats stats;
  if (grid_bits >= 0) {
    const TickQueue proto(grid_bits);
    stats = run_sharded_flat_loop(proto, net, packets, arena.data(), links,
                                  cfg, busy_until, busy_time);
  } else {
    const EventQueue proto;
    stats = run_sharded_flat_loop(proto, net, packets, arena.data(), links,
                                  cfg, busy_until, busy_time);
  }
  return summarize(net, stats, cfg, busy_time, busy_until);
}

SimResult run_sharded_faulty(const SimNetwork& net, const Router& route,
                             const FaultPlan& plan,
                             std::vector<FaultPacket>& packets,
                             const SimConfig& cfg,
                             std::span<const RoutedInjection> presets,
                             std::span<const std::uint16_t> preset_ports) {
  std::vector<LinkHot> links = make_link_table(net, cfg);
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<double> busy_time(net.num_links(), 0.0);
  const int grid_bits = quantized_grid_bits(links, cfg, packets);
  EngineStats stats;
  if (grid_bits >= 0) {
    const TickQueue proto(grid_bits);
    stats = run_sharded_faulty_loop(proto, net, route, plan, packets, links,
                                    cfg, presets, preset_ports, busy_until,
                                    busy_time);
  } else {
    const EventQueue proto;
    stats = run_sharded_faulty_loop(proto, net, route, plan, packets, links,
                                    cfg, presets, preset_ports, busy_until,
                                    busy_time);
  }
  return summarize(net, stats, cfg, busy_time, busy_until);
}

}  // namespace ipg::sim::detail
