// Engine::kSharded — conservative-window parallel event processing.
// Design notes in sim/sharded.hpp; the window/barrier protocol here replays
// exactly the sequential engines' canonical (time, seq) event order, which
// is what makes every SimResult field bit-identical across engines, domain
// counts, and thread counts (test_sim_sharded pins this).

#include "sim/sharded.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <span>
#include <vector>

#include "sim/event_heap.hpp"
#include "sim/observer.hpp"
#include "topology/domain_cut.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ipg::sim::detail {
namespace {

constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};
constexpr double kInf = std::numeric_limits<double>::infinity();

/// One observable effect of a processed event, buffered by the domain that
/// produced it (in its local pop order, so already sorted by (key, seq))
/// and replayed serially at the barrier after a K-way merge. Deliveries are
/// always buffered — LatencyHistogram folds samples in arrival order, and
/// floating-point accumulation only reproduces the sequential engines'
/// bits when replayed in the same order. The observer-only kinds are
/// buffered only when an observer is attached.
struct Rec {
  enum Kind : std::uint8_t { kDeliver, kHop, kDetour, kRetry, kDrop };
  std::uint64_t key = 0;  ///< the popped event's time bits
  std::uint32_t seq = 0;  ///< the popped event's identity-derived seq
  Kind kind = kDeliver;
  bool offchip = false;          // kHop
  std::uint16_t route_hops = 0;  // kDetour: adopted route length
  std::uint32_t pid = 0;
  NodeId node = 0;  ///< deliver: dst | hop: from | detour/drop: at | retry: src
  NodeId to = 0;              // kHop
  std::uint32_t attempt = 0;  // kRetry
  LinkId link = 0;            // kHop
  double d0 = 0;  ///< deliver: inject_time | hop: start | retry: resume
  double d1 = 0;  // kHop: tail_departure
  double d2 = 0;  // kHop: arrival
};

void apply_rec(const Rec& r, EngineStats& stats, SimObserver* obs) {
  const double time = std::bit_cast<double>(r.key);
  switch (r.kind) {
    case Rec::kDeliver:
      record_delivery(stats, obs, r.pid, r.node, time, r.d0);
      break;
    case Rec::kHop:
      obs->on_hop({r.pid, r.node, r.to, r.link, r.d0, r.d1, r.d2, r.offchip});
      break;
    case Rec::kDetour:
      obs->on_detour(r.pid, r.node, time, r.route_hops);
      break;
    case Rec::kRetry:
      obs->on_retry(r.pid, r.attempt, r.node, time, r.d0);
      break;
    case Rec::kDrop:
      obs->on_drop(r.pid, r.node, time);
      break;
  }
}

/// Serial barrier replay: K-way merge of the domains' record buffers by
/// (key, seq). Equal (key, seq) across domains cannot collide — a packet
/// lives in exactly one domain per window and its seq embeds its id — and
/// within a domain equal pairs (a detour and its hop) stay adjacent because
/// the scan prefers the earliest domain position at ties.
template <typename Domain>
void replay_window(std::vector<Domain>& doms, EngineStats& stats,
                   SimObserver* obs) {
  std::vector<std::size_t> pos(doms.size(), 0);
  for (;;) {
    std::size_t best = doms.size();
    for (std::size_t d = 0; d < doms.size(); ++d) {
      if (pos[d] >= doms[d].recs.size()) continue;
      const Rec& r = doms[d].recs[pos[d]];
      if (best == doms.size()) {
        best = d;
        continue;
      }
      const Rec& b = doms[best].recs[pos[best]];
      if (r.key < b.key || (r.key == b.key && r.seq < b.seq)) best = d;
    }
    if (best == doms.size()) break;
    apply_rec(doms[best].recs[pos[best]++], stats, obs);
  }
  for (Domain& d : doms) d.recs.clear();
}

/// Domain count for a run: the explicit knob, else the process thread
/// pool's size, never more than one domain per node.
std::size_t resolve_domains(const SimNetwork& net, const SimConfig& cfg) {
  std::size_t k = cfg.shard_domains > 0 ? cfg.shard_domains
                                        : util::ThreadPool::global().size();
  if (k < 1) k = 1;
  return std::min(k, net.num_nodes());
}

/// Conservative lookahead: the least simulated time by which an event in
/// one domain can schedule an event in another. Crossing a domain boundary
/// always rides a link (arrival >= start + min(1, len) * inv_bandwidth +
/// latency for both switching modes), and with retries enabled a failed
/// packet may be rescheduled at a cross-domain source after just the base
/// backoff delay. +infinity when no link crosses the cut (K == 1): one
/// window covers the whole run.
double cross_lookahead(const SimNetwork& net, const std::vector<LinkHot>& links,
                       const std::vector<std::uint32_t>& domain_of,
                       const SimConfig& cfg) {
  double min_inv = kInf;
  for (LinkId l = 0; l < net.num_links(); ++l) {
    if (domain_of[net.link_from(l)] != domain_of[links[l].to]) {
      min_inv = std::min(min_inv, links[l].inv_bandwidth);
    }
  }
  if (!std::isfinite(min_inv)) return kInf;
  double la = cfg.link_latency_cycles +
              min_inv * std::min(1.0, cfg.packet_length_flits);
  if (cfg.max_retries > 0) la = std::min(la, cfg.retry_backoff_cycles);
  return la;
}

/// End of the window starting at @p m_time: m + lookahead, nudged up one
/// ulp when the sum absorbs (times so large that m + la == m) so every
/// window still makes progress. The mailbox drain cross-checks arrivals
/// against this bound, so absorption can degrade speed but never
/// correctness.
double window_end(double m_time, double lookahead) {
  double w = std::isfinite(lookahead) ? m_time + lookahead : kInf;
  if (!(w > m_time)) w = std::nextafter(m_time, kInf);
  return w;
}

/// Runs K domain closures, on the process pool when it helps, inline when
/// the pool could not (single worker) or must not (already inside a pool
/// worker — a sharded run inside a sweep job stays sequential rather than
/// deadlocking on its own pool). The inline path is also the K == 1 path,
/// so results never depend on which executor ran.
template <typename Body>
void run_domains(std::size_t k, Body&& body) {
  util::ThreadPool& pool = util::ThreadPool::global();
  if (k == 1 || pool.size() == 1 || util::ThreadPool::in_worker()) {
    for (std::size_t d = 0; d < k; ++d) body(d);
    return;
  }
  std::vector<std::exception_ptr> errors(k);
  for (std::size_t d = 0; d < k; ++d) {
    pool.submit([&body, &errors, d] {
      try {
        body(d);
      } catch (...) {
        errors[d] = std::current_exception();
      }
    });
  }
  pool.wait();
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

// ---------------------------------------------------------------------------
// Healthy sharded run (no faults, no cutoff, unbounded buffers).
// ---------------------------------------------------------------------------

template <typename Queue>
struct HealthyDomain {
  Queue events;
  std::vector<std::uint32_t> order;  ///< owned slice of the injection order
  std::size_t next_inject = 0;
  std::vector<Rec> recs;
  std::size_t hops = 0;
  std::size_t offchip_hops = 0;
  std::vector<std::vector<Event>> outbox;  ///< one per destination domain

  HealthyDomain(const Queue& proto, std::size_t k) : events(proto), outbox(k) {}
};

/// Earliest pending (time, seq) key in this domain — queued events merged
/// with its not-yet-streamed injections — or kNoEvent when idle.
template <typename Queue>
std::uint64_t next_key(HealthyDomain<Queue>& dom,
                       const std::vector<FlatPacket>& packets) {
  std::uint64_t key = dom.events.empty() ? kNoEvent : dom.events.top().key;
  if (dom.next_inject < dom.order.size()) {
    key = std::min(
        key, Event::key_of(packets[dom.order[dom.next_inject]].inject_time));
  }
  return key;
}

/// One domain's window [m, W): the arena engine's event loop verbatim
/// (same arithmetic, same order), stopping at w_key and diverting events
/// for other domains into the outbox. links is shared across domains but a
/// hop only touches links[l] for l leaving a node this domain owns.
template <typename Queue>
void run_healthy_window(HealthyDomain<Queue>& dom, std::uint64_t w_key,
                        const SimNetwork& net,
                        const std::vector<FlatPacket>& packets,
                        const std::uint16_t* route_ports,
                        std::vector<LinkHot>& links,
                        const std::vector<std::uint32_t>& domain_of,
                        std::uint32_t my_domain, const SimConfig& cfg,
                        bool record_hops) {
  const std::size_t* first_link = net.first_links();
  const double latency = cfg.link_latency_cycles;
  const bool store_and_forward = cfg.switching == Switching::kStoreAndForward;

  for (;;) {
    Event ev;
    if (dom.next_inject < dom.order.size()) {
      const std::uint32_t pid = dom.order[dom.next_inject];
      const FlatPacket& p = packets[pid];
      const Event inject{Event::key_of(p.inject_time),
                         Event::kPacketSeqBase + pid,
                         pid,
                         p.at,
                         p.cursor,
                         p.hops_left,
                         p.route_len};
      if (dom.events.empty() || inject < dom.events.top()) {
        if (inject.key >= w_key) break;
        ev = inject;
        ++dom.next_inject;
      } else {
        if (dom.events.top().key >= w_key) break;
        ev = dom.events.top();
        dom.events.pop();
      }
    } else if (!dom.events.empty()) {
      if (dom.events.top().key >= w_key) break;
      ev = dom.events.top();
      dom.events.pop();
    } else {
      break;
    }

    if (ev.hops_left == 0) {
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kDeliver;
      r.pid = ev.id();
      r.node = ev.at;
      r.d0 = packets[ev.id()].inject_time;
      dom.recs.push_back(r);
      continue;
    }
    const std::uint16_t port = route_ports[ev.cursor];
    const LinkId link_id = static_cast<LinkId>(first_link[ev.at] + port);
    LinkHot& link = links[link_id];
    const NodeId to = link.to;
    const bool last_hop = ev.hops_left == 1;

    const double now = ev.time();
    const double start = std::max(now, link.busy_until);
    const double tail_departure = start + link.transfer;
    const double tail_arrival = tail_departure + latency;
    link.busy_until = tail_departure;
    link.busy_time += link.transfer;

    ++dom.hops;
    dom.offchip_hops += link.offchip;
    if (record_hops) {
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kHop;
      r.offchip = link.offchip != 0;
      r.pid = ev.id();
      r.node = ev.at;
      r.to = to;
      r.link = link_id;
      r.d0 = start;
      r.d1 = tail_departure;
      r.d2 = tail_arrival;
      dom.recs.push_back(r);
    }

    double ready_next;
    if (store_and_forward) {
      ready_next = tail_arrival;
    } else {
      const double head_arrival = start + link.inv_bandwidth + latency;
      ready_next = last_hop ? tail_arrival : head_arrival;
    }
    const Event nxt{Event::key_of(ready_next),
                    Event::kPacketSeqBase + ev.id(),
                    ev.id(),
                    to,
                    ev.cursor + 1,
                    static_cast<std::uint16_t>(ev.hops_left - 1),
                    ev.route_len};
    const std::uint32_t dst_dom = domain_of[to];
    if (dst_dom == my_domain) {
      dom.events.push(nxt);
    } else {
      dom.outbox[dst_dom].push_back(nxt);
    }
  }
}

template <typename Queue>
EngineStats run_sharded_flat_loop(const Queue& proto, const SimNetwork& net,
                                  std::vector<FlatPacket>& packets,
                                  const std::uint16_t* route_ports,
                                  std::vector<LinkHot>& links,
                                  const SimConfig& cfg,
                                  std::vector<double>& link_busy_until,
                                  std::vector<double>& link_busy_time) {
  const std::size_t k = resolve_domains(net, cfg);
  const topology::DomainCut cut = topology::make_domain_cut(net.chips(), k);
  const double lookahead = cross_lookahead(net, links, cut.domain_of, cfg);

  std::vector<HealthyDomain<Queue>> doms;
  doms.reserve(k);
  for (std::size_t d = 0; d < k; ++d) doms.emplace_back(proto, k);
  for (const std::uint32_t pid : injection_order(packets)) {
    doms[cut.domain_of[packets[pid].at]].order.push_back(pid);
  }

  EngineStats stats;
  stats.latency.reserve(packets.size());
  SimObserver* const obs = cfg.observer;
  const bool record_hops = obs != nullptr;

  std::uint64_t last_w_key = 0;
  for (;;) {
    // Serial barrier, part 1: drain cross-domain mailboxes. The drain also
    // proves the previous window honored its own lookahead bound — if
    // floating-point absorption ever produced an arrival inside the window
    // that emitted it, the run fails loudly instead of silently diverging
    // from the sequential order.
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b) {
        for (const Event& e : doms[a].outbox[b]) {
          IPG_CHECK(e.key >= last_w_key,
                    "sharded engine: cross-domain arrival inside its own "
                    "window (lookahead violated)");
          doms[b].events.push(e);
        }
        doms[a].outbox[b].clear();
      }
    }

    std::uint64_t m = kNoEvent;
    for (HealthyDomain<Queue>& d : doms) {
      m = std::min(m, next_key(d, packets));
    }
    if (m == kNoEvent) break;

    const double m_time = std::bit_cast<double>(m);
    const double w = window_end(m_time, lookahead);
    const std::uint64_t w_key = Event::key_of(w);
    last_w_key = w_key;

    run_domains(k, [&](std::size_t d) {
      run_healthy_window(doms[d], w_key, net, packets, route_ports, links,
                         cut.domain_of, static_cast<std::uint32_t>(d), cfg,
                         record_hops);
    });
    replay_window(doms, stats, obs);
  }

  for (LinkId l = 0; l < links.size(); ++l) {
    link_busy_until[l] = links[l].busy_until;
    link_busy_time[l] = links[l].busy_time;
  }
  stats.injected = packets.size();
  for (const HealthyDomain<Queue>& d : doms) {
    stats.hops += d.hops;
    stats.offchip_hops += d.offchip_hops;
  }
  if (stats.delivered != packets.size()) {
    // Unreachable for unbounded buffers (every event chain ends in a
    // delivery); kept for message parity with the sequential engines.
    fail_with_deadlock_cycle(std::vector<std::deque<std::uint32_t>>{},
                             [&](std::uint32_t pid) { return packets[pid].at; });
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Degraded-mode sharded run (fault plan and/or max_cycles cutoff).
// ---------------------------------------------------------------------------

template <typename Queue>
struct FaultyDomain {
  Queue events;
  FaultRoutes routes;  ///< private memo shard keyed by route source
  std::vector<std::uint32_t> order;
  std::size_t next_inject = 0;
  std::vector<Rec> recs;
  std::size_t hops = 0;
  std::size_t offchip_hops = 0;
  std::size_t dropped = 0;
  std::size_t retransmitted = 0;
  std::size_t reroute_hops = 0;
  std::vector<std::vector<Event>> outbox;

  FaultyDomain(const Queue& proto, const FaultCore& core, const Router& route,
               std::size_t k)
      : events(proto), routes(core, route), outbox(k) {}
};

template <typename Queue>
std::uint64_t next_key(FaultyDomain<Queue>& dom,
                       const std::vector<FaultPacket>& packets) {
  std::uint64_t key = dom.events.empty() ? kNoEvent : dom.events.top().key;
  if (dom.next_inject < dom.order.size()) {
    key = std::min(
        key, Event::key_of(packets[dom.order[dom.next_inject]].inject_time));
  }
  return key;
}

/// One domain's degraded window [m, W): the fault-aware loop body verbatim
/// minus bounded buffers (rejected under kSharded) and minus fault
/// application — W never crosses the next plan event, so the usability
/// bits read from the shared core are constant for the whole window.
template <typename Queue>
void run_faulty_window(FaultyDomain<Queue>& dom, std::uint64_t w_key,
                       const SimNetwork& net, const FaultCore& core,
                       std::vector<FaultPacket>& packets,
                       std::vector<LinkHot>& links,
                       const std::vector<std::uint32_t>& domain_of,
                       std::uint32_t my_domain, const SimConfig& cfg,
                       bool record_obs) {
  const std::size_t* first_link = net.first_links();
  const double latency = cfg.link_latency_cycles;
  const bool store_and_forward = cfg.switching == Switching::kStoreAndForward;

  const auto push_event = [&](const Event& e, NodeId at_node) {
    const std::uint32_t dd = domain_of[at_node];
    if (dd == my_domain) {
      dom.events.push(e);
    } else {
      dom.outbox[dd].push_back(e);
    }
  };

  const auto fail_packet = [&](std::uint32_t pid, const Event& ev,
                               double now) {
    FaultPacket& p = packets[pid];
    if (p.attempt < cfg.max_retries) {
      ++p.attempt;
      ++dom.retransmitted;
      p.at = p.src;
      p.routed = false;
      p.reroutes = 0;
      const double delay =
          retry_backoff_delay(cfg.retry_backoff_cycles, p.attempt);
      push_event(
          Event{Event::key_of(now + delay), Event::kPacketSeqBase + pid, pid},
          p.src);
      if (record_obs) {
        Rec r;
        r.key = ev.key;
        r.seq = ev.seq;
        r.kind = Rec::kRetry;
        r.pid = pid;
        r.node = p.src;
        r.attempt = p.attempt;
        r.d0 = now + delay;
        dom.recs.push_back(r);
      }
    } else {
      p.state = kDropped;
      ++dom.dropped;
      if (record_obs) {
        Rec r;
        r.key = ev.key;
        r.seq = ev.seq;
        r.kind = Rec::kDrop;
        r.pid = pid;
        r.node = p.at;
        dom.recs.push_back(r);
      }
    }
  };

  for (;;) {
    Event ev;
    if (dom.next_inject < dom.order.size()) {
      const std::uint32_t next_pid = dom.order[dom.next_inject];
      const Event inject{Event::key_of(packets[next_pid].inject_time),
                         Event::kPacketSeqBase + next_pid, next_pid};
      if (dom.events.empty() || inject < dom.events.top()) {
        if (inject.key >= w_key) break;
        ev = inject;
        ++dom.next_inject;
      } else {
        if (dom.events.top().key >= w_key) break;
        ev = dom.events.top();
        dom.events.pop();
      }
    } else if (!dom.events.empty()) {
      if (dom.events.top().key >= w_key) break;
      ev = dom.events.top();
      dom.events.pop();
    } else {
      break;
    }

    const double now = ev.time();
    const std::uint32_t pid = ev.id();
    FaultPacket& p = packets[pid];
    if (!p.routed) {
      RouteRef ref;
      if (!dom.routes.route_from(p.at, p.dst, ref)) {
        fail_packet(pid, ev, now);
        continue;
      }
      p.routed = true;
      p.cursor = ref.offset;
      p.hops_left = ref.length;
    }
    if (p.hops_left == 0) {
      p.state = kDelivered;
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kDeliver;
      r.pid = pid;
      r.node = p.at;
      r.d0 = p.inject_time;
      dom.recs.push_back(r);
      continue;
    }

    std::uint16_t port = dom.routes.ports()[p.cursor];
    LinkId link_id = first_link[p.at] + port;
    if (!core.link_usable(link_id)) {
      RouteRef ref;
      if (p.reroutes >= cfg.misroute_budget ||
          !dom.routes.route_from(p.at, p.dst, ref)) {
        fail_packet(pid, ev, now);
        continue;
      }
      ++p.reroutes;
      if (ref.length > p.hops_left) {
        dom.reroute_hops += static_cast<std::size_t>(ref.length - p.hops_left);
      }
      p.cursor = ref.offset;
      p.hops_left = ref.length;
      port = dom.routes.ports()[p.cursor];
      link_id = first_link[p.at] + port;  // first hop is live by construction
      if (record_obs) {
        Rec r;
        r.key = ev.key;
        r.seq = ev.seq;
        r.kind = Rec::kDetour;
        r.route_hops = ref.length;
        r.pid = pid;
        r.node = p.at;
        dom.recs.push_back(r);
      }
    }

    LinkHot& link = links[link_id];
    const NodeId to = link.to;
    const bool last_hop = p.hops_left == 1;

    const double start = std::max(now, link.busy_until);
    const double tail_departure = start + link.transfer;
    const double tail_arrival = tail_departure + latency;
    link.busy_until = tail_departure;
    link.busy_time += link.transfer;

    ++dom.hops;
    dom.offchip_hops += link.offchip;
    if (record_obs) {
      Rec r;
      r.key = ev.key;
      r.seq = ev.seq;
      r.kind = Rec::kHop;
      r.offchip = link.offchip != 0;
      r.pid = pid;
      r.node = p.at;
      r.to = to;
      r.link = static_cast<LinkId>(link_id);
      r.d0 = start;
      r.d1 = tail_departure;
      r.d2 = tail_arrival;
      dom.recs.push_back(r);
    }

    double ready_next;
    if (store_and_forward) {
      ready_next = tail_arrival;
    } else {
      const double head_arrival = start + link.inv_bandwidth + latency;
      ready_next = last_hop ? tail_arrival : head_arrival;
    }
    p.at = to;
    ++p.cursor;
    --p.hops_left;
    push_event(
        Event{Event::key_of(ready_next), Event::kPacketSeqBase + pid, pid},
        to);
  }
}

template <typename Queue>
EngineStats run_sharded_faulty_loop(const Queue& proto, const SimNetwork& net,
                                    const Router& route, const FaultPlan& plan,
                                    std::vector<FaultPacket>& packets,
                                    std::vector<LinkHot>& links,
                                    const SimConfig& cfg,
                                    std::vector<double>& link_busy_until,
                                    std::vector<double>& link_busy_time) {
  const std::size_t k = resolve_domains(net, cfg);
  const topology::DomainCut cut = topology::make_domain_cut(net.chips(), k);
  const double lookahead = cross_lookahead(net, links, cut.domain_of, cfg);

  FaultCore core(net, plan);
  core.set_observer(cfg.observer);
  std::vector<FaultyDomain<Queue>> doms;
  doms.reserve(k);
  for (std::size_t d = 0; d < k; ++d) doms.emplace_back(proto, core, route, k);
  for (const std::uint32_t pid : injection_order(packets)) {
    doms[cut.domain_of[packets[pid].src]].order.push_back(pid);
  }
  // Memo invalidation is only legal at the serial barriers below; the
  // windows themselves may append to their shard but never evict.
  for (FaultyDomain<Queue>& d : doms) d.routes.set_mutation_allowed(false);

  EngineStats stats;
  stats.latency.reserve(packets.size());
  SimObserver* const obs = cfg.observer;
  const bool record_obs = obs != nullptr;
  const double cutoff = cfg.max_cycles;
  bool cutoff_hit = false;

  std::uint64_t last_w_key = 0;
  for (;;) {
    // Serial barrier, part 1: drain mailboxes, handing each migrating
    // packet over to its new owner. A routed packet's remaining route is
    // copied out of the source domain's memo shard into the owner's, so
    // in-flight refs always resolve against the shard of the domain
    // processing them.
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b) {
        for (const Event& e : doms[a].outbox[b]) {
          IPG_CHECK(e.key >= last_w_key,
                    "sharded engine: cross-domain arrival inside its own "
                    "window (lookahead violated)");
          FaultPacket& p = packets[e.id()];
          if (p.routed && p.hops_left > 0) {
            const std::uint16_t* src_ports = doms[a].routes.ports();
            p.cursor =
                doms[b]
                    .routes
                    .adopt({src_ports + p.cursor, std::size_t{p.hops_left}})
                    .offset;
          }
          doms[b].events.push(e);
        }
        doms[a].outbox[b].clear();
      }
    }

    std::uint64_t m = kNoEvent;
    for (FaultyDomain<Queue>& d : doms) {
      m = std::min(m, next_key(d, packets));
    }
    if (m == kNoEvent) break;
    const double m_time = std::bit_cast<double>(m);
    if (cutoff > 0 && m_time > cutoff) {
      cutoff_hit = true;
      break;
    }

    // Serial barrier, part 2: apply every plan event with time <= m —
    // exactly where the sequential loop applies them (before the first
    // event at or after the fault instant), so on_fault lands at the same
    // position in the observer stream — then let each shard drop the memo
    // entries the new dead set invalidated.
    if (core.pending(m_time)) {
      const FaultCore::Applied applied = core.apply_until(m_time);
      for (FaultyDomain<Queue>& d : doms) {
        d.routes.set_mutation_allowed(true);
        d.routes.evict(applied.any_repair);
        d.routes.set_mutation_allowed(false);
      }
    }

    // The window may not cross the next plan event (usability bits must
    // stay constant) nor the cutoff boundary (events past it must not be
    // processed; one ulp above it keeps events exactly at the cutoff in,
    // matching the sequential `now > cutoff` break).
    double w = window_end(m_time, lookahead);
    w = std::min(w, core.next_fault_time());
    if (cutoff > 0) w = std::min(w, std::nextafter(cutoff, kInf));
    const std::uint64_t w_key = Event::key_of(w);
    last_w_key = w_key;

    run_domains(k, [&](std::size_t d) {
      run_faulty_window(doms[d], w_key, net, core, packets, links,
                        cut.domain_of, static_cast<std::uint32_t>(d), cfg,
                        record_obs);
    });
    replay_window(doms, stats, obs);
  }

  for (LinkId l = 0; l < links.size(); ++l) {
    link_busy_until[l] = links[l].busy_until;
    link_busy_time[l] = links[l].busy_time;
  }
  stats.injected = packets.size();
  for (const FaultyDomain<Queue>& d : doms) {
    stats.hops += d.hops;
    stats.offchip_hops += d.offchip_hops;
    stats.dropped += d.dropped;
    stats.retransmitted += d.retransmitted;
    stats.reroute_hops += d.reroute_hops;
  }
  for (const FaultPacket& p : packets) {
    if (p.state == kActive) ++stats.in_flight;
  }
  if (stats.in_flight > 0 && !cutoff_hit) {
    fail_with_deadlock_cycle(std::vector<std::deque<std::uint32_t>>{},
                             [&](std::uint32_t pid) { return packets[pid].at; });
  }
  IPG_CHECK(
      stats.delivered + stats.dropped + stats.in_flight == stats.injected,
      "packet conservation violated");
  stats.cutoff_hit = cutoff_hit;
  return stats;
}

}  // namespace

SimResult run_sharded_flat(const SimNetwork& net,
                           std::vector<FlatPacket>& packets,
                           const RouteArena& arena, const SimConfig& cfg) {
  IPG_CHECK(packets.size() < Event::kFreeBufferBit &&
                net.num_nodes() < Event::kFreeBufferBit,
            "packet/node ids must fit in 31 bits");
  std::vector<LinkHot> links = make_link_table(net, cfg);
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<double> busy_time(net.num_links(), 0.0);
  const int grid_bits = quantized_grid_bits(links, cfg, packets);
  EngineStats stats;
  if (grid_bits >= 0) {
    const TickQueue proto(grid_bits);
    stats = run_sharded_flat_loop(proto, net, packets, arena.data(), links,
                                  cfg, busy_until, busy_time);
  } else {
    const EventQueue proto;
    stats = run_sharded_flat_loop(proto, net, packets, arena.data(), links,
                                  cfg, busy_until, busy_time);
  }
  return summarize(net, stats, cfg, busy_time, busy_until);
}

SimResult run_sharded_faulty(const SimNetwork& net, const Router& route,
                             const FaultPlan& plan,
                             std::vector<FaultPacket>& packets,
                             const SimConfig& cfg) {
  std::vector<LinkHot> links = make_link_table(net, cfg);
  std::vector<double> busy_until(net.num_links(), 0.0);
  std::vector<double> busy_time(net.num_links(), 0.0);
  const int grid_bits = quantized_grid_bits(links, cfg, packets);
  EngineStats stats;
  if (grid_bits >= 0) {
    const TickQueue proto(grid_bits);
    stats = run_sharded_faulty_loop(proto, net, route, plan, packets, links,
                                    cfg, busy_until, busy_time);
  } else {
    const EventQueue proto;
    stats = run_sharded_faulty_loop(proto, net, route, plan, packets, links,
                                    cfg, busy_until, busy_time);
  }
  return summarize(net, stats, cfg, busy_time, busy_until);
}

}  // namespace ipg::sim::detail
