#include "sim/traffic.hpp"

#include <cmath>
#include <numeric>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ipg::sim {

TrafficPattern uniform_traffic(std::size_t num_nodes) {
  IPG_CHECK(num_nodes >= 2,
            "uniform traffic needs at least two nodes to pick a non-self "
            "destination");
  return [num_nodes](NodeId src, util::Xoshiro256& rng) {
    const auto d = static_cast<NodeId>(rng.below(num_nodes - 1));
    return d >= src ? d + 1 : d;  // skip self
  };
}

TrafficPattern bit_complement_traffic(std::size_t num_nodes) {
  // Power-of-two only: on other sizes src ^ mask lands outside [0, N) for
  // some sources, which would crash the injection drivers mid-run.
  IPG_CHECK(num_nodes >= 2 && util::is_pow2(num_nodes),
            "bit-complement traffic needs a power-of-two node count >= 2");
  const auto mask = static_cast<NodeId>(num_nodes - 1);
  return [mask](NodeId src, util::Xoshiro256&) { return src ^ mask; };
}

TrafficPattern transpose_traffic(std::size_t num_nodes) {
  IPG_CHECK(num_nodes >= 2 && util::is_pow2(num_nodes),
            "transpose traffic needs a power-of-two node count >= 2");
  const unsigned bits = util::exact_log2(num_nodes);
  IPG_CHECK(bits % 2 == 0,
            "transpose traffic needs an even number of address bits "
            "(a square matrix)");
  const unsigned half = bits / 2;
  const auto lo_mask = (NodeId{1} << half) - 1;
  return [half, lo_mask](NodeId src, util::Xoshiro256&) {
    return static_cast<NodeId>(((src & lo_mask) << half) | (src >> half));
  };
}

TrafficPattern bit_reversal_traffic(std::size_t num_nodes) {
  IPG_CHECK(num_nodes >= 2 && util::is_pow2(num_nodes),
            "bit-reversal traffic needs a power-of-two node count >= 2");
  const unsigned bits = util::exact_log2(num_nodes);
  return [bits](NodeId src, util::Xoshiro256&) {
    return static_cast<NodeId>(util::bit_reverse(src, bits));
  };
}

TrafficPattern shift_traffic(std::size_t num_nodes, std::size_t shift) {
  IPG_CHECK(num_nodes >= 2, "shift traffic needs at least two nodes");
  IPG_CHECK(shift >= 1 && shift < num_nodes,
            "shift must be in [1, num_nodes) so no node sends to itself");
  return [num_nodes, shift](NodeId src, util::Xoshiro256&) {
    return static_cast<NodeId>((src + shift) % num_nodes);
  };
}

TrafficPattern tornado_traffic(std::size_t num_nodes) {
  IPG_CHECK(num_nodes >= 2, "tornado traffic needs at least two nodes");
  return shift_traffic(num_nodes, num_nodes / 2);
}

TrafficPattern hotspot_traffic(std::size_t num_nodes, NodeId hot,
                               double hot_fraction) {
  IPG_CHECK(num_nodes >= 2, "hotspot traffic needs at least two nodes");
  IPG_CHECK(hot < num_nodes, "hot spot out of range");
  IPG_CHECK(std::isfinite(hot_fraction) && hot_fraction >= 0.0 &&
                hot_fraction <= 1.0,
            "hot_fraction must be a finite probability in [0, 1]");
  auto uniform = uniform_traffic(num_nodes);
  return [uniform, hot, hot_fraction](NodeId src, util::Xoshiro256& rng) {
    if (src != hot && rng.bernoulli(hot_fraction)) return hot;
    return uniform(src, rng);
  };
}

std::vector<NodeId> random_permutation(std::size_t num_nodes,
                                       util::Xoshiro256& rng) {
  std::vector<NodeId> perm(num_nodes);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (std::size_t i = num_nodes; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  return perm;
}

}  // namespace ipg::sim
