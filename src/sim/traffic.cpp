#include "sim/traffic.hpp"

#include <numeric>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace ipg::sim {

TrafficPattern uniform_traffic(std::size_t num_nodes) {
  return [num_nodes](NodeId src, util::Xoshiro256& rng) {
    const auto d = static_cast<NodeId>(rng.below(num_nodes - 1));
    return d >= src ? d + 1 : d;  // skip self
  };
}

TrafficPattern bit_complement_traffic(std::size_t num_nodes) {
  IPG_CHECK(util::is_pow2(num_nodes), "bit-complement needs a power-of-two size");
  const auto mask = static_cast<NodeId>(num_nodes - 1);
  return [mask](NodeId src, util::Xoshiro256&) { return src ^ mask; };
}

TrafficPattern transpose_traffic(std::size_t num_nodes) {
  IPG_CHECK(util::is_pow2(num_nodes), "transpose needs a power-of-two size");
  const unsigned bits = util::exact_log2(num_nodes);
  IPG_CHECK(bits % 2 == 0, "transpose needs an even number of address bits");
  const unsigned half = bits / 2;
  const auto lo_mask = (NodeId{1} << half) - 1;
  return [half, lo_mask](NodeId src, util::Xoshiro256&) {
    return static_cast<NodeId>(((src & lo_mask) << half) | (src >> half));
  };
}

TrafficPattern bit_reversal_traffic(std::size_t num_nodes) {
  IPG_CHECK(util::is_pow2(num_nodes), "bit-reversal needs a power-of-two size");
  const unsigned bits = util::exact_log2(num_nodes);
  return [bits](NodeId src, util::Xoshiro256&) {
    return static_cast<NodeId>(util::bit_reverse(src, bits));
  };
}

TrafficPattern hotspot_traffic(std::size_t num_nodes, NodeId hot,
                               double hot_fraction) {
  IPG_CHECK(hot < num_nodes, "hot spot out of range");
  auto uniform = uniform_traffic(num_nodes);
  return [uniform, hot, hot_fraction](NodeId src, util::Xoshiro256& rng) {
    if (src != hot && rng.bernoulli(hot_fraction)) return hot;
    return uniform(src, rng);
  };
}

std::vector<NodeId> random_permutation(std::size_t num_nodes,
                                       util::Xoshiro256& rng) {
  std::vector<NodeId> perm(num_nodes);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (std::size_t i = num_nodes; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  return perm;
}

}  // namespace ipg::sim
