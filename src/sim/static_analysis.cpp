#include "sim/static_analysis.hpp"

#include <algorithm>
#include <mutex>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ipg::sim {

LoadAnalysis analyze_uniform_load(const SimNetwork& net, const Router& route,
                                  std::size_t exact_limit, std::size_t samples,
                                  std::uint64_t seed) {
  const std::size_t n = net.num_nodes();
  IPG_CHECK(n >= 2, "need at least two nodes");
  std::vector<double> uses(net.num_links(), 0.0);
  double total_pairs = 0;

  auto account = [&](NodeId src, NodeId dst) {
    NodeId at = src;
    for (const auto dim : route(src, dst)) {
      const std::size_t port = net.port_for_dim(at, dim);
      uses[net.link_of(at, port)] += 1.0;
      at = net.arc(at, port).to;
    }
    total_pairs += 1.0;
  };

  if (n <= exact_limit) {
    // Exact all-pairs enumeration, parallel over sources with per-chunk
    // accumulators merged under a lock.
    std::mutex merge_mutex;
    util::parallel_for_chunked(0, n, [&](std::size_t lo, std::size_t hi) {
      std::vector<double> local_uses(net.num_links(), 0.0);
      double local_pairs = 0;
      for (std::size_t s = lo; s < hi; ++s) {
        for (NodeId d = 0; d < n; ++d) {
          if (d == static_cast<NodeId>(s)) continue;
          NodeId at = static_cast<NodeId>(s);
          for (const auto dim : route(static_cast<NodeId>(s), d)) {
            const std::size_t port = net.port_for_dim(at, dim);
            local_uses[net.link_of(at, port)] += 1.0;
            at = net.arc(at, port).to;
          }
          local_pairs += 1.0;
        }
      }
      std::lock_guard lock(merge_mutex);
      for (LinkId l = 0; l < net.num_links(); ++l) uses[l] += local_uses[l];
      total_pairs += local_pairs;
    });
  } else {
    util::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < samples; ++i) {
      const auto s = static_cast<NodeId>(rng.below(n));
      auto d = static_cast<NodeId>(rng.below(n - 1));
      if (d >= s) ++d;
      account(s, d);
    }
  }

  LoadAnalysis out;
  double best = 0;
  double offchip_sum = 0;
  std::size_t offchip_count = 0;
  for (LinkId l = 0; l < net.num_links(); ++l) {
    const double p = uses[l] / total_pairs;
    if (net.is_offchip(l)) {
      offchip_sum += p;
      ++offchip_count;
    }
    if (p <= 0) continue;
    const double saturation = net.bandwidth(l) / (static_cast<double>(n) * p);
    if (out.bottleneck_probability == 0 || saturation < best) {
      best = saturation;
      out.bottleneck = l;
      out.bottleneck_probability = p;
      out.bottleneck_offchip = net.is_offchip(l);
    }
  }
  out.predicted_saturation_throughput = best;
  out.avg_offchip_probability =
      offchip_count == 0 ? 0 : offchip_sum / static_cast<double>(offchip_count);
  return out;
}

}  // namespace ipg::sim
