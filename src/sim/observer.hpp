#pragma once
// Observability layer for the flow simulator (docs/OBSERVABILITY.md).
//
// SimObserver is a hook interface threaded through both engines
// (Engine::kArena and Engine::kReference) and the fault-aware data plane:
// packet lifecycle events (inject, hop, detour, retry, drop, deliver),
// link busy intervals (carried by each hop), applied fault-plan events,
// and run begin/end. Hooks are pure notifications — an observer can never
// change a simulation, so for a fixed seed every SimResult field is
// bit-identical with and without one attached (pinned by
// tests/test_sim_observer.cpp). A null SimConfig::observer costs one
// predicted-not-taken branch per event.
//
// Three shipped implementations:
//   MetricsObserver     — counters + per-link busy time + a bounded
//                         log-scale latency histogram;
//   ChromeTraceObserver — Chrome trace_event JSON exporter (one track per
//                         node and per link; load the file in
//                         chrome://tracing or https://ui.perfetto.dev);
//   StreamSweepProgress — per-sweep-job progress/throughput reporting
//                         (lives in sim/sweep.hpp; it observes jobs, not
//                         packets).
//
// Observers are NOT thread-safe: give each concurrent sweep job its own
// observer (or none). SimConfig copies share the pointer, so a base
// config handed to a sweep builder must leave observer null.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/fault_plan.hpp"
#include "sim/network.hpp"

namespace ipg::sim {

/// One packet transfer over one directed link, as both engines model it:
/// the link is busy during [start, tail_departure); the tail reaches the
/// downstream node at arrival (= tail_departure + link latency).
struct HopRecord {
  std::uint32_t packet = 0;
  NodeId from = 0;
  NodeId to = 0;
  LinkId link = 0;
  double start = 0;
  double tail_departure = 0;
  double arrival = 0;
  bool offchip = false;
};

/// Hook interface. Every method has an empty default so observers override
/// only what they consume. Call order within a run is deterministic (it
/// follows the canonical (time, sequence) event order), so observer output
/// is as reproducible as the SimResult itself.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// Start of a run_* driver, after input validation, before any packet
  /// event. @p net outlives the run.
  virtual void on_run_begin(const SimNetwork& /*net*/) {}
  /// A packet entering the workload (distinct packets, not retry attempts).
  virtual void on_inject(std::uint32_t /*packet*/, NodeId /*src*/,
                         NodeId /*dst*/, double /*time*/) {}
  /// A transfer occupying a link (see HopRecord). Fires once per hop,
  /// including hops of packets that are later dropped or cut off.
  virtual void on_hop(const HopRecord& /*hop*/) {}
  /// A packet adopting a fresh route mid-flight after finding its next
  /// link dead; @p route_hops is the length of the new route from @p at.
  virtual void on_detour(std::uint32_t /*packet*/, NodeId /*at*/,
                         double /*time*/, std::uint16_t /*route_hops*/) {}
  /// A failed packet rescheduled from its source @p src; @p attempt counts
  /// from 1 and @p resume_time includes the backoff delay.
  virtual void on_retry(std::uint32_t /*packet*/, std::uint32_t /*attempt*/,
                        NodeId /*src*/, double /*time*/,
                        double /*resume_time*/) {}
  /// A packet dropped for good (no live route / budgets exhausted).
  virtual void on_drop(std::uint32_t /*packet*/, NodeId /*at*/,
                       double /*time*/) {}
  /// Full delivery at the destination; @p latency = time - injection time.
  virtual void on_deliver(std::uint32_t /*packet*/, NodeId /*dst*/,
                          double /*time*/, double /*latency*/) {}
  /// A fault-plan event taking effect (applied in plan order as simulated
  /// time advances).
  virtual void on_fault(const FaultEvent& /*event*/) {}
  /// End of the run. @p horizon is the reporting horizon utilization is
  /// normalized by: the last delivery, extended to the max_cycles cutoff
  /// when one ended the run early.
  virtual void on_run_end(double /*horizon*/) {}
};

/// Bounded-memory latency sample: exact up to kExactCap samples (nearest-
/// rank percentiles via percentile_nearest_rank, bit-identical to the
/// pre-histogram engines), then folded into a fixed log-scale histogram
/// with kSubBuckets buckets per octave. Histogram percentile estimates
/// return the bucket midpoint; for values in [2^kMinExp, 2^(kMaxExp+1))
/// the relative error is below relative_error_bound() = 1/(2·kSubBuckets).
/// Count/sum/max stay exact in both regimes, so averages never degrade.
class LatencyHistogram {
 public:
  static constexpr std::size_t kExactCap = std::size_t{1} << 16;
  static constexpr int kSubBucketBits = 6;  ///< 64 buckets per octave
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  static constexpr int kMinExp = -8;  ///< smaller magnitudes clamp here
  static constexpr int kMaxExp = 48;  ///< larger magnitudes clamp here

  /// Relative error bound of histogram-mode percentiles (in-range values).
  static constexpr double relative_error_bound() {
    return 1.0 / static_cast<double>(2 * kSubBuckets);
  }

  void reserve(std::size_t n);
  void record(double v);

  std::size_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double max() const noexcept { return max_; }
  /// True while percentiles are exact (count() <= kExactCap).
  bool exact() const noexcept { return buckets_.empty(); }

  /// Nearest-rank percentile, pct in (0, 100]: exact while in exact mode
  /// (the sample buffer is reordered, not consumed), bucket-midpoint
  /// estimate afterwards. Requires count() > 0.
  double percentile(double pct);

 private:
  static std::size_t bucket_of(double v) noexcept;
  static double bucket_mid(std::size_t idx) noexcept;
  void fold_into_buckets();

  std::vector<double> exact_;           ///< samples while in exact mode
  std::vector<std::uint64_t> buckets_;  ///< non-empty once folded
  std::size_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

/// Shipped observer #1: counters, per-link busy time, and a bounded
/// latency histogram. Reusable across runs — counters and latencies
/// accumulate; per-link busy time grows to the largest network seen.
class MetricsObserver final : public SimObserver {
 public:
  struct Counters {
    std::size_t injected = 0;
    std::size_t delivered = 0;
    std::size_t dropped = 0;
    std::size_t retries = 0;
    std::size_t detours = 0;
    std::size_t hops = 0;
    std::size_t offchip_hops = 0;
    std::size_t faults_applied = 0;
    std::size_t runs = 0;
  };

  void on_run_begin(const SimNetwork& net) override;
  void on_inject(std::uint32_t packet, NodeId src, NodeId dst,
                 double time) override;
  void on_hop(const HopRecord& hop) override;
  void on_detour(std::uint32_t packet, NodeId at, double time,
                 std::uint16_t route_hops) override;
  void on_retry(std::uint32_t packet, std::uint32_t attempt, NodeId src,
                double time, double resume_time) override;
  void on_drop(std::uint32_t packet, NodeId at, double time) override;
  void on_deliver(std::uint32_t packet, NodeId dst, double time,
                  double latency) override;
  void on_fault(const FaultEvent& event) override;

  const Counters& counters() const noexcept { return counters_; }
  LatencyHistogram& latencies() noexcept { return latencies_; }
  const LatencyHistogram& latencies() const noexcept { return latencies_; }
  /// Busy time accumulated per directed link (indexed by LinkId).
  const std::vector<double>& link_busy_time() const noexcept {
    return link_busy_;
  }

 private:
  Counters counters_;
  LatencyHistogram latencies_;
  std::vector<double> link_busy_;
};

/// Shipped observer #2: records packet/link/fault activity and exports it
/// as Chrome trace_event JSON (docs/OBSERVABILITY.md documents the
/// schema). Tracks: process "nodes" carries instant markers (inject,
/// deliver, drop, retry, detour, fault) on one thread per node; process
/// "links" carries complete ("X") busy intervals on one thread per
/// directed link. One simulated cycle maps to one trace microsecond.
/// Recording stops at @p max_events (truncated() turns true) so a runaway
/// run cannot exhaust memory; the JSON stays valid either way.
class ChromeTraceObserver final : public SimObserver {
 public:
  explicit ChromeTraceObserver(std::size_t max_events = std::size_t{1} << 20)
      : max_events_(max_events) {}

  void on_run_begin(const SimNetwork& net) override;
  void on_inject(std::uint32_t packet, NodeId src, NodeId dst,
                 double time) override;
  void on_hop(const HopRecord& hop) override;
  void on_detour(std::uint32_t packet, NodeId at, double time,
                 std::uint16_t route_hops) override;
  void on_retry(std::uint32_t packet, std::uint32_t attempt, NodeId src,
                double time, double resume_time) override;
  void on_drop(std::uint32_t packet, NodeId at, double time) override;
  void on_deliver(std::uint32_t packet, NodeId dst, double time,
                  double latency) override;
  void on_fault(const FaultEvent& event) override;

  /// Writes the whole trace as a JSON object ({"traceEvents": [...]}).
  void write_json(std::ostream& os) const;

  std::size_t num_events() const noexcept { return recs_.size(); }
  bool truncated() const noexcept { return truncated_; }

 private:
  enum class Kind : std::uint8_t {
    kHop,
    kInject,
    kDeliver,
    kDrop,
    kRetry,
    kDetour,
    kFault,
  };
  struct Rec {
    double ts;         ///< cycles (written as trace microseconds)
    double dur;        ///< hop only: busy duration
    std::uint32_t tid; ///< link id (hop) or node id (everything else)
    std::uint32_t a;   ///< packet id / fault event index
    Kind kind;
  };

  bool add(const Rec& rec);

  struct LinkInfo {
    NodeId from = 0;
    NodeId to = 0;
    bool offchip = false;
  };

  std::vector<LinkInfo> links_;     ///< captured at on_run_begin
  std::size_t num_nodes_ = 0;
  std::vector<Rec> recs_;
  std::vector<FaultEvent> faults_;  ///< applied events, in apply order
  std::size_t max_events_;
  bool truncated_ = false;
};

}  // namespace ipg::sim
