#include "sim/network.hpp"

#include <algorithm>
#include <cmath>

namespace ipg::sim {

SimNetwork::SimNetwork(Graph graph, Clustering chips,
                       double offchip_budget_per_chip, double onchip_bandwidth)
    : graph_(std::move(graph)), chips_(std::move(chips)) {
  IPG_CHECK(chips_.num_nodes() == graph_.num_nodes(),
            "clustering does not match graph");
  IPG_CHECK(std::isfinite(offchip_budget_per_chip) &&
                std::isfinite(onchip_bandwidth) &&
                offchip_budget_per_chip > 0 && onchip_bandwidth > 0,
            "bandwidths must be positive and finite");

  first_link_.resize(graph_.num_nodes() + 1, 0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    first_link_[v + 1] = first_link_[v] + graph_.degree(v);
  }
  link_from_.reserve(graph_.num_arcs());
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    link_from_.insert(link_from_.end(), graph_.degree(v), v);
  }

  // Off-chip links touching each chip (counted as outgoing arcs).
  std::vector<std::size_t> offchip_links(chips_.num_clusters(), 0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    for (const Arc& a : graph_.arcs_of(v)) {
      if (chips_.is_intercluster(v, a.to)) ++offchip_links[chips_.cluster_of(v)];
    }
  }

  bandwidth_.reserve(graph_.num_arcs());
  offchip_.reserve(graph_.num_arcs());
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    for (const Arc& a : graph_.arcs_of(v)) {
      if (!chips_.is_intercluster(v, a.to)) {
        bandwidth_.push_back(onchip_bandwidth);
        offchip_.push_back(false);
        continue;
      }
      const auto ca = chips_.cluster_of(v);
      const auto cb = chips_.cluster_of(a.to);
      const double ba = offchip_budget_per_chip / static_cast<double>(offchip_links[ca]);
      const double bb = offchip_budget_per_chip / static_cast<double>(offchip_links[cb]);
      bandwidth_.push_back(std::min(ba, bb));
      offchip_.push_back(true);
    }
  }

  build_dim_port_table();
}

void SimNetwork::build_dim_port_table() {
  std::size_t max_dim = 0;
  bool any = false;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    for (const Arc& a : graph_.arcs_of(v)) {
      max_dim = std::max<std::size_t>(max_dim, a.dim);
      any = true;
    }
  }
  num_dims_ = any ? max_dim + 1 : 0;
  dim_port_.assign(graph_.num_nodes() * num_dims_, -1);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    const auto arcs = graph_.arcs_of(v);
    for (std::size_t p = 0; p < arcs.size(); ++p) {
      std::int32_t& slot = dim_port_[v * num_dims_ + arcs[p].dim];
      if (slot < 0) slot = static_cast<std::int32_t>(p);  // first match wins
    }
  }
}

SimNetwork SimNetwork::with_uniform_bandwidth(Graph graph, Clustering chips,
                                              double link_bandwidth) {
  IPG_CHECK(std::isfinite(link_bandwidth) && link_bandwidth > 0,
            "bandwidth must be positive and finite");
  // Build through the chip constructor, then flatten all bandwidths.
  SimNetwork net(std::move(graph), std::move(chips), 1.0, 1.0);
  std::fill(net.bandwidth_.begin(), net.bandwidth_.end(), link_bandwidth);
  return net;
}

SimNetwork SimNetwork::with_bandwidths(Graph graph, Clustering chips,
                                       std::vector<double> per_arc_bandwidth) {
  IPG_CHECK(per_arc_bandwidth.size() == graph.num_arcs(),
            "need one bandwidth per arc");
  for (const double b : per_arc_bandwidth) {
    IPG_CHECK(std::isfinite(b) && b > 0, "bandwidths must be positive and finite");
  }
  SimNetwork net(std::move(graph), std::move(chips), 1.0, 1.0);
  net.bandwidth_ = std::move(per_arc_bandwidth);
  return net;
}

std::size_t SimNetwork::port_for_dim(NodeId v, std::size_t dim) const {
  const std::int32_t p =
      dim < num_dims_ ? dim_port_[v * num_dims_ + dim] : -1;
  IPG_CHECK(p >= 0, "node has no link with the requested dimension label");
  return static_cast<std::size_t>(p);
}

std::vector<std::uint16_t> SimNetwork::ports_from_dims(
    NodeId src, const std::vector<std::size_t>& dims) const {
  std::vector<std::uint16_t> ports;
  ports.reserve(dims.size());
  append_route(src, dims, ports);
  return ports;
}

void SimNetwork::append_route(NodeId src, const std::vector<std::size_t>& dims,
                              std::vector<std::uint16_t>& out) const {
  NodeId cur = src;
  for (const std::size_t d : dims) {
    const std::size_t p = port_for_dim(cur, d);
    out.push_back(static_cast<std::uint16_t>(p));
    cur = arc(cur, p).to;
  }
}

}  // namespace ipg::sim
