#include "sim/network.hpp"

#include <algorithm>

namespace ipg::sim {

SimNetwork::SimNetwork(Graph graph, Clustering chips,
                       double offchip_budget_per_chip, double onchip_bandwidth)
    : graph_(std::move(graph)), chips_(std::move(chips)) {
  IPG_CHECK(chips_.num_nodes() == graph_.num_nodes(),
            "clustering does not match graph");
  IPG_CHECK(offchip_budget_per_chip > 0 && onchip_bandwidth > 0,
            "bandwidths must be positive");

  first_link_.resize(graph_.num_nodes() + 1, 0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    first_link_[v + 1] = first_link_[v] + graph_.degree(v);
  }

  // Off-chip links touching each chip (counted as outgoing arcs).
  std::vector<std::size_t> offchip_links(chips_.num_clusters(), 0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    for (const Arc& a : graph_.arcs_of(v)) {
      if (chips_.is_intercluster(v, a.to)) ++offchip_links[chips_.cluster_of(v)];
    }
  }

  bandwidth_.reserve(graph_.num_arcs());
  offchip_.reserve(graph_.num_arcs());
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    for (const Arc& a : graph_.arcs_of(v)) {
      if (!chips_.is_intercluster(v, a.to)) {
        bandwidth_.push_back(onchip_bandwidth);
        offchip_.push_back(false);
        continue;
      }
      const auto ca = chips_.cluster_of(v);
      const auto cb = chips_.cluster_of(a.to);
      const double ba = offchip_budget_per_chip / static_cast<double>(offchip_links[ca]);
      const double bb = offchip_budget_per_chip / static_cast<double>(offchip_links[cb]);
      bandwidth_.push_back(std::min(ba, bb));
      offchip_.push_back(true);
    }
  }
}

SimNetwork SimNetwork::with_uniform_bandwidth(Graph graph, Clustering chips,
                                              double link_bandwidth) {
  IPG_CHECK(link_bandwidth > 0, "bandwidth must be positive");
  // Build through the chip constructor, then flatten all bandwidths.
  SimNetwork net(std::move(graph), std::move(chips), 1.0, 1.0);
  std::fill(net.bandwidth_.begin(), net.bandwidth_.end(), link_bandwidth);
  return net;
}

SimNetwork SimNetwork::with_bandwidths(Graph graph, Clustering chips,
                                       std::vector<double> per_arc_bandwidth) {
  IPG_CHECK(per_arc_bandwidth.size() == graph.num_arcs(),
            "need one bandwidth per arc");
  for (const double b : per_arc_bandwidth) {
    IPG_CHECK(b > 0, "bandwidths must be positive");
  }
  SimNetwork net(std::move(graph), std::move(chips), 1.0, 1.0);
  net.bandwidth_ = std::move(per_arc_bandwidth);
  return net;
}

std::size_t SimNetwork::port_for_dim(NodeId v, std::size_t dim) const {
  const auto arcs = graph_.arcs_of(v);
  for (std::size_t p = 0; p < arcs.size(); ++p) {
    if (arcs[p].dim == dim) return p;
  }
  IPG_CHECK(false, "node has no link with the requested dimension label");
  return 0;
}

std::vector<std::uint16_t> SimNetwork::ports_from_dims(
    NodeId src, const std::vector<std::size_t>& dims) const {
  std::vector<std::uint16_t> ports;
  ports.reserve(dims.size());
  NodeId cur = src;
  for (const std::size_t d : dims) {
    const std::size_t p = port_for_dim(cur, d);
    ports.push_back(static_cast<std::uint16_t>(p));
    cur = arc(cur, p).to;
  }
  return ports;
}

}  // namespace ipg::sim
