#pragma once
// Congestion-aware adaptive routing (docs/ADAPTIVE_ROUTING.md).
//
// Classic UGAL picks, per packet, between the minimal route and a
// Valiant-style nonminimal route through a random intermediate, using local
// queue depths as the congestion signal. This layer reproduces that
// decision at injection-planning time instead of inside the switches: a
// UgalPlanner scores each candidate route against (a) link loads measured
// by a CongestionMonitor during an earlier run and (b) the load the planner
// itself has already committed to links in this plan, then hands the chosen
// port sequences to run_routed. Because every engine replays the same
// preset routes, adaptive runs inherit the simulator's determinism contract
// unchanged: bit-identical SimResults across Engine::kArena / kReference /
// kSharded, every domain count, every thread count — pinned by
// tests/test_sim_adaptive.cpp and the "adaptive-routing" conformance check.
//
// The monitor is a plain SimObserver: attach it to any run (typically a
// minimal-routing warm-up of the same workload), and it folds each link's
// busy fraction into an exponentially weighted moving average across runs.
// Both engines deliver observer hooks in the same canonical order, so the
// monitor's state — and therefore every downstream adaptive decision — is
// itself engine-independent.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/observer.hpp"
#include "sim/simulator.hpp"

namespace ipg::sim {

/// Live per-link congestion estimate, fed from the simulator's observer
/// hooks. During a run it accumulates each directed link's busy time
/// (on_hop); at on_run_end it folds busy/horizon — the link's utilization
/// over the run — into an EWMA across runs: load <- alpha * new + (1 -
/// alpha) * old. alpha = 1 (the default) makes load() simply the last
/// run's utilization. Deterministic: both accumulation order and horizon
/// are part of the engines' bit-identical observer contract.
class CongestionMonitor final : public SimObserver {
 public:
  explicit CongestionMonitor(double alpha = 1.0);

  void on_run_begin(const SimNetwork& net) override;
  void on_hop(const HopRecord& hop) override;
  void on_run_end(double horizon) override;

  /// EWMA'd busy fraction of directed link @p l, in [0, 1] per folded run.
  /// 0 for links never observed (or before the first on_run_end).
  double load(LinkId l) const noexcept {
    return l < load_.size() ? load_[l] : 0.0;
  }
  std::span<const double> loads() const noexcept { return load_; }
  std::size_t runs_observed() const noexcept { return runs_; }

 private:
  double alpha_;
  std::vector<double> busy_;  ///< current run's per-link busy time
  std::vector<double> load_;  ///< EWMA across completed runs
  std::size_t runs_ = 0;
};

/// UGAL decision knobs. The planner computes, for each candidate route,
///   cost = sum over links l of (1 / bandwidth(l)) *
///          (1 + monitor_weight * monitor.load(l) + planned_weight *
///           planned(l)) + (nonminimal ? nonminimal_penalty : 0)
/// where planned(l) counts the transfers this plan has already routed over
/// l — the self-congestion term that spreads a batch even with no monitor
/// attached. The minimal route wins ties (strictly lower cost switches to
/// nonminimal), so candidates = 0 degenerates to pure minimal routing.
struct UgalConfig {
  std::uint64_t seed = 1;
  /// Valiant intermediates drawn per packet. 0 disables adaptivity.
  std::uint32_t candidates = 2;
  /// Weight of the CongestionMonitor's measured load (ignored if none).
  double monitor_weight = 1.0;
  /// Weight of the plan's own committed load.
  double planned_weight = 1.0;
  /// Additive cost bias toward the minimal route, in cycles.
  double nonminimal_penalty = 0.0;
  /// Intermediates are drawn from [0, intermediate_nodes); 0 = the whole
  /// node range. Topologies whose router only accepts a prefix of the node
  /// ids (fat-tree hosts) must bound this to that prefix.
  std::size_t intermediate_nodes = 0;
};

/// Plans per-packet routes for run_routed. Not thread-safe; one planner
/// plans one run's injection list, in injection order. Deterministic: the
/// intermediate draws come from a per-packet RNG stream derived from
/// (cfg.seed, packet index), independent of everything else.
class UgalPlanner {
 public:
  /// @p net, @p minimal, and @p monitor (may be null) must outlive the
  /// planner. A null monitor plans from the planned-load term alone.
  UgalPlanner(const SimNetwork& net, const Router& minimal,
              const UgalConfig& cfg, const CongestionMonitor* monitor);

  /// Chooses a route for the next packet (packet ids count up from 0 in
  /// call order, matching run_routed's injection order) and appends its
  /// ports to the shared buffer.
  RoutedInjection plan(NodeId src, NodeId dst, double time);

  /// The shared port buffer backing the planned refs — pass to run_routed.
  /// Valid until the next plan() call appends.
  std::span<const std::uint16_t> ports() const noexcept { return ports_; }

  std::size_t packets_minimal() const noexcept { return minimal_count_; }
  std::size_t packets_nonminimal() const noexcept { return nonminimal_count_; }

 private:
  double route_cost(NodeId src, std::span<const std::uint16_t> route) const;
  void commit(NodeId src, std::span<const std::uint16_t> route);

  const SimNetwork& net_;
  const Router& minimal_;
  UgalConfig cfg_;
  const CongestionMonitor* monitor_;
  std::vector<std::uint16_t> ports_;
  std::vector<double> planned_;  ///< transfers committed per directed link
  std::uint32_t next_packet_ = 0;
  std::size_t minimal_count_ = 0;
  std::size_t nonminimal_count_ = 0;
};

/// A run_routed result plus the planner's minimal/nonminimal split.
struct AdaptiveResult {
  SimResult sim;
  std::size_t packets_minimal = 0;
  std::size_t packets_nonminimal = 0;
};

/// run_batch under UGAL: plans one packet per node (dst[v] == v skipped,
/// all at t = 0) with @p ugal, then replays through run_routed. @p monitor
/// may be null; typically it watched a minimal-routing warm-up of the same
/// destination set. Honors every SimConfig knob, fault plans included.
AdaptiveResult run_adaptive_batch(const SimNetwork& net, const Router& minimal,
                                  const std::vector<NodeId>& dst,
                                  const UgalConfig& ugal, const SimConfig& cfg,
                                  const CongestionMonitor* monitor);

/// run_open under UGAL: plans the exact open-loop population
/// open_injection_schedule draws (same per-node RNG streams as run_open),
/// then replays through run_routed.
AdaptiveResult run_adaptive_open(const SimNetwork& net, const Router& minimal,
                                 const TrafficPattern& pattern, double rate,
                                 std::size_t inject_cycles,
                                 const UgalConfig& ugal, const SimConfig& cfg,
                                 const CongestionMonitor* monitor);

}  // namespace ipg::sim
