#include "sim/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ipg::sim {

CongestionMonitor::CongestionMonitor(double alpha) : alpha_(alpha) {
  IPG_CHECK(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
}

void CongestionMonitor::on_run_begin(const SimNetwork& net) {
  busy_.assign(net.num_links(), 0.0);
  if (load_.size() != net.num_links()) {
    // New network shape: prior loads are meaningless, start fresh.
    load_.assign(net.num_links(), 0.0);
    runs_ = 0;
  }
}

void CongestionMonitor::on_hop(const HopRecord& hop) {
  busy_[hop.link] += hop.tail_departure - hop.start;
}

void CongestionMonitor::on_run_end(double horizon) {
  if (horizon <= 0) return;
  for (std::size_t l = 0; l < busy_.size(); ++l) {
    const double util = std::min(1.0, busy_[l] / horizon);
    load_[l] = runs_ == 0 ? util : alpha_ * util + (1.0 - alpha_) * load_[l];
  }
  ++runs_;
}

UgalPlanner::UgalPlanner(const SimNetwork& net, const Router& minimal,
                         const UgalConfig& cfg,
                         const CongestionMonitor* monitor)
    : net_(net), minimal_(minimal), cfg_(cfg), monitor_(monitor) {
  IPG_CHECK(std::isfinite(cfg.monitor_weight) && cfg.monitor_weight >= 0,
            "monitor_weight must be non-negative and finite");
  IPG_CHECK(std::isfinite(cfg.planned_weight) && cfg.planned_weight >= 0,
            "planned_weight must be non-negative and finite");
  IPG_CHECK(
      std::isfinite(cfg.nonminimal_penalty) && cfg.nonminimal_penalty >= 0,
      "nonminimal_penalty must be non-negative and finite");
  IPG_CHECK(cfg.intermediate_nodes <= net.num_nodes(),
            "intermediate_nodes exceeds the node count");
  if (monitor != nullptr && monitor->runs_observed() > 0) {
    IPG_CHECK(monitor->loads().size() == net.num_links(),
              "congestion monitor watched a different network");
  }
  planned_.assign(net.num_links(), 0.0);
}

double UgalPlanner::route_cost(NodeId src,
                               std::span<const std::uint16_t> route) const {
  double cost = 0;
  NodeId at = src;
  for (const std::uint16_t port : route) {
    const LinkId link = net_.link_of(at, port);
    double factor = 1.0 + cfg_.planned_weight * planned_[link];
    if (monitor_ != nullptr) {
      factor += cfg_.monitor_weight * monitor_->load(link);
    }
    cost += factor / net_.bandwidth(link);
    at = net_.arc(at, port).to;
  }
  return cost;
}

void UgalPlanner::commit(NodeId src, std::span<const std::uint16_t> route) {
  NodeId at = src;
  for (const std::uint16_t port : route) {
    const LinkId link = net_.link_of(at, port);
    planned_[link] += 1.0;
    at = net_.arc(at, port).to;
  }
}

RoutedInjection UgalPlanner::plan(NodeId src, NodeId dst, double time) {
  const std::uint32_t pid = next_packet_++;
  IPG_CHECK(src < net_.num_nodes() && dst < net_.num_nodes() && src != dst,
            "plan endpoints out of range or equal");

  std::vector<std::uint16_t> best =
      net_.ports_from_dims(src, minimal_(src, dst));
  double best_cost = route_cost(src, best);
  bool best_nonminimal = false;

  if (cfg_.candidates > 0) {
    const std::size_t pool = cfg_.intermediate_nodes > 0
                                 ? cfg_.intermediate_nodes
                                 : net_.num_nodes();
    util::Xoshiro256 rng(util::derive_seed(cfg_.seed, pid));
    std::vector<std::uint16_t> cand;
    for (std::uint32_t c = 0; c < cfg_.candidates; ++c) {
      NodeId mid = topology::kInvalidNode;
      // Bounded redraw keeps the per-packet draw count deterministic even
      // in tiny networks where src/dst cover most of the pool.
      for (int tries = 0; tries < 16; ++tries) {
        const auto m = static_cast<NodeId>(rng.below(pool));
        if (m != src && m != dst) {
          mid = m;
          break;
        }
      }
      if (mid == topology::kInvalidNode) continue;
      cand = net_.ports_from_dims(src, minimal_(src, mid));
      net_.append_route(mid, minimal_(mid, dst), cand);
      const double cost =
          route_cost(src, cand) + cfg_.nonminimal_penalty;
      if (cost < best_cost) {
        best_cost = cost;
        best.swap(cand);
        best_nonminimal = true;
      }
    }
  }

  IPG_CHECK(best.size() <= 0xffff, "planned route too long for a RouteRef");
  commit(src, best);
  if (best_nonminimal) {
    ++nonminimal_count_;
  } else {
    ++minimal_count_;
  }
  RoutedInjection out;
  out.src = src;
  out.dst = dst;
  out.time = time;
  out.route_offset = static_cast<std::uint32_t>(ports_.size());
  out.route_length = static_cast<std::uint16_t>(best.size());
  ports_.insert(ports_.end(), best.begin(), best.end());
  return out;
}

namespace {

AdaptiveResult replay(const SimNetwork& net, const Router& minimal,
                      UgalPlanner& planner,
                      std::span<const RoutedInjection> routed,
                      const SimConfig& cfg) {
  AdaptiveResult r;
  r.sim = run_routed(net, minimal, routed, planner.ports(), cfg);
  r.packets_minimal = planner.packets_minimal();
  r.packets_nonminimal = planner.packets_nonminimal();
  return r;
}

}  // namespace

AdaptiveResult run_adaptive_batch(const SimNetwork& net, const Router& minimal,
                                  const std::vector<NodeId>& dst,
                                  const UgalConfig& ugal, const SimConfig& cfg,
                                  const CongestionMonitor* monitor) {
  IPG_CHECK(dst.size() == net.num_nodes(), "one destination per node");
  UgalPlanner planner(net, minimal, ugal, monitor);
  std::vector<RoutedInjection> routed;
  routed.reserve(dst.size());
  for (NodeId v = 0; v < dst.size(); ++v) {
    IPG_CHECK(dst[v] < net.num_nodes(), "destination out of range");
    if (dst[v] == v) continue;
    routed.push_back(planner.plan(v, dst[v], 0.0));
  }
  return replay(net, minimal, planner, routed, cfg);
}

AdaptiveResult run_adaptive_open(const SimNetwork& net, const Router& minimal,
                                 const TrafficPattern& pattern, double rate,
                                 std::size_t inject_cycles,
                                 const UgalConfig& ugal, const SimConfig& cfg,
                                 const CongestionMonitor* monitor) {
  const std::vector<Injection> schedule =
      open_injection_schedule(net, pattern, rate, inject_cycles, cfg.seed);
  UgalPlanner planner(net, minimal, ugal, monitor);
  std::vector<RoutedInjection> routed;
  routed.reserve(schedule.size());
  for (const Injection& i : schedule) {
    routed.push_back(planner.plan(i.src, i.dst, i.time));
  }
  return replay(net, minimal, planner, routed, cfg);
}

}  // namespace ipg::sim
