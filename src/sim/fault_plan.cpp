#include "sim/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/observer.hpp"
#include "topology/faults.hpp"
#include "util/check.hpp"

namespace ipg::sim {

void FaultPlan::insert(const FaultEvent& e) {
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), e,
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  events_.insert(pos, e);
}

void FaultPlan::validate(std::size_t num_nodes) const {
  for (const FaultEvent& e : events_) {
    IPG_CHECK(std::isfinite(e.time) && e.time >= 0,
              "fault event time must be finite and non-negative");
    IPG_CHECK(e.a < num_nodes, "fault event names a node out of range");
    if (e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp) {
      IPG_CHECK(e.b < num_nodes, "fault event names a node out of range");
      IPG_CHECK(e.a != e.b, "link fault needs two distinct endpoints");
    }
  }
}

FaultPlan FaultPlan::random_link_faults(const topology::Graph& g,
                                        const topology::Clustering* chips,
                                        std::size_t count, double first_time,
                                        double spacing, std::uint64_t seed) {
  IPG_CHECK(std::isfinite(first_time) && first_time >= 0,
            "fault times must be finite and non-negative");
  IPG_CHECK(std::isfinite(spacing) && spacing >= 0,
            "fault spacing must be finite and non-negative");
  FaultPlan plan;
  const auto links = topology::sample_links(g, chips, count, seed);
  for (std::size_t i = 0; i < links.size(); ++i) {
    plan.fail_link(first_time + static_cast<double>(i) * spacing,
                   links[i].first, links[i].second);
  }
  return plan;
}

FaultCore::FaultCore(const SimNetwork& net, const FaultPlan& plan)
    : net_(net), events_(plan.events()) {
  plan.validate(net.num_nodes());
  link_dead_.assign(net.num_links(), 0);
  node_dead_.assign(net.num_nodes(), 0);
  usable_.assign(net.num_links(), 1);
}

double FaultCore::next_fault_time() const noexcept {
  return next_event_ < events_.size()
             ? events_[next_event_].time
             : std::numeric_limits<double>::infinity();
}

void FaultCore::refresh(LinkId link) {
  const NodeId u = net_.link_from(link);
  const NodeId w = net_.link_to(link);
  usable_[link] =
      (link_dead_[link] == 0 && node_dead_[u] == 0 && node_dead_[w] == 0) ? 1
                                                                          : 0;
}

void FaultCore::set_link(NodeId a, NodeId b, bool dead) {
  bool found = false;
  const auto mark = [&](NodeId u, NodeId w) {
    const auto arcs = net_.graph().arcs_of(u);
    for (std::size_t port = 0; port < arcs.size(); ++port) {
      if (arcs[port].to != w) continue;
      const LinkId link = net_.link_of(u, port);
      link_dead_[link] = dead ? 1 : 0;
      refresh(link);
      found = true;
    }
  };
  mark(a, b);
  mark(b, a);
  IPG_CHECK(found, "fault plan names a link absent from the network");
}

void FaultCore::apply(const FaultEvent& e) {
  if (observer_ != nullptr) observer_->on_fault(e);
  switch (e.kind) {
    case FaultKind::kLinkDown:
      set_link(e.a, e.b, true);
      break;
    case FaultKind::kLinkUp:
      set_link(e.a, e.b, false);
      break;
    case FaultKind::kNodeDown:
    case FaultKind::kNodeUp: {
      node_dead_[e.a] = e.kind == FaultKind::kNodeDown ? 1 : 0;
      const auto arcs = net_.graph().arcs_of(e.a);
      for (std::size_t port = 0; port < arcs.size(); ++port) {
        refresh(net_.link_of(e.a, port));
        // Incoming direction: the reverse arc at the neighbor (all stock
        // networks are undirected, so it exists; if not, nothing to do).
        const NodeId w = arcs[port].to;
        const auto back = net_.graph().arcs_of(w);
        for (std::size_t q = 0; q < back.size(); ++q) {
          if (back[q].to == e.a) refresh(net_.link_of(w, q));
        }
      }
      break;
    }
  }
}

FaultCore::Applied FaultCore::apply_until(double now) {
  Applied result;
  while (next_event_ < events_.size() && events_[next_event_].time <= now) {
    const FaultEvent& e = events_[next_event_++];
    result.any = true;
    result.any_repair |=
        e.kind == FaultKind::kLinkUp || e.kind == FaultKind::kNodeUp;
    apply(e);
  }
  return result;
}

FaultRoutes::FaultRoutes(const FaultCore& core, const Router& route)
    : core_(core), route_(route), arena_(core.net(), route) {}

void FaultRoutes::evict(bool any_repair) {
  IPG_CHECK(mutation_allowed_,
            "route memo invalidation outside a sync barrier");
  if (any_repair) {
    arena_.clear_memo();
    return;
  }
  const SimNetwork& net = core_.net();
  const std::span<const std::uint8_t> usable = core_.usable();
  arena_.erase_memo_if([&](NodeId src, NodeId /*dst*/, RouteRef ref) {
    NodeId cur = src;
    const std::uint16_t* route = arena_.data() + ref.offset;
    for (std::uint16_t i = 0; i < ref.length; ++i) {
      const LinkId link = net.link_of(cur, route[i]);
      if (usable[link] == 0) return true;
      cur = net.arc(cur, route[i]).to;
    }
    return false;
  });
}

bool FaultRoutes::route_from(NodeId u, NodeId dst, RouteRef& out) {
  if (const RouteRef* hit = arena_.lookup(u, dst)) {
    out = *hit;
    return true;
  }
  const SimNetwork& net = core_.net();
  const std::span<const std::uint8_t> usable = core_.usable();
  scratch_.clear();
  // Prefer the topology router's route (the paper's routing) while it
  // avoids the dead set; fall back to a BFS shortest path otherwise.
  bool live = true;
  NodeId cur = u;
  for (const std::size_t dim : route_(u, dst)) {
    const std::size_t port = net.port_for_dim(cur, dim);
    if (usable[net.link_of(cur, port)] == 0) {
      live = false;
      break;
    }
    scratch_.push_back(static_cast<std::uint16_t>(port));
    cur = net.arc(cur, port).to;
  }
  if (!live) {
    scratch_.clear();
    if (!append_live_route(net, usable, u, dst, scratch_)) return false;
  }
  out = arena_.put(u, dst, scratch_);
  return true;
}

}  // namespace ipg::sim
