#include "sim/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "sim/observer.hpp"
#include "topology/faults.hpp"
#include "util/check.hpp"

namespace ipg::sim {

void FaultPlan::insert(const FaultEvent& e) {
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), e,
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  events_.insert(pos, e);
}

void FaultPlan::validate(std::size_t num_nodes) const {
  for (const FaultEvent& e : events_) {
    IPG_CHECK(std::isfinite(e.time) && e.time >= 0,
              "fault event time must be finite and non-negative");
    IPG_CHECK(e.a < num_nodes, "fault event names a node out of range");
    if (e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp) {
      IPG_CHECK(e.b < num_nodes, "fault event names a node out of range");
      IPG_CHECK(e.a != e.b, "link fault needs two distinct endpoints");
    }
  }
}

FaultPlan FaultPlan::random_link_faults(const topology::Graph& g,
                                        const topology::Clustering* chips,
                                        std::size_t count, double first_time,
                                        double spacing, std::uint64_t seed) {
  IPG_CHECK(std::isfinite(first_time) && first_time >= 0,
            "fault times must be finite and non-negative");
  IPG_CHECK(std::isfinite(spacing) && spacing >= 0,
            "fault spacing must be finite and non-negative");
  FaultPlan plan;
  const auto links = topology::sample_links(g, chips, count, seed);
  for (std::size_t i = 0; i < links.size(); ++i) {
    plan.fail_link(first_time + static_cast<double>(i) * spacing,
                   links[i].first, links[i].second);
  }
  return plan;
}

FaultState::FaultState(const SimNetwork& net, const FaultPlan& plan,
                       const Router& route)
    : net_(net), route_(route), events_(plan.events()), arena_(net, route) {
  plan.validate(net.num_nodes());
  link_dead_.assign(net.num_links(), 0);
  node_dead_.assign(net.num_nodes(), 0);
  usable_.assign(net.num_links(), 1);
}

void FaultState::refresh(LinkId link) {
  const NodeId u = net_.link_from(link);
  const NodeId w = net_.link_to(link);
  usable_[link] =
      (link_dead_[link] == 0 && node_dead_[u] == 0 && node_dead_[w] == 0) ? 1
                                                                          : 0;
}

void FaultState::set_link(NodeId a, NodeId b, bool dead) {
  bool found = false;
  const auto mark = [&](NodeId u, NodeId w) {
    const auto arcs = net_.graph().arcs_of(u);
    for (std::size_t port = 0; port < arcs.size(); ++port) {
      if (arcs[port].to != w) continue;
      const LinkId link = net_.link_of(u, port);
      link_dead_[link] = dead ? 1 : 0;
      refresh(link);
      found = true;
    }
  };
  mark(a, b);
  mark(b, a);
  IPG_CHECK(found, "fault plan names a link absent from the network");
}

void FaultState::apply(const FaultEvent& e) {
  if (observer_ != nullptr) observer_->on_fault(e);
  switch (e.kind) {
    case FaultKind::kLinkDown:
      set_link(e.a, e.b, true);
      break;
    case FaultKind::kLinkUp:
      set_link(e.a, e.b, false);
      break;
    case FaultKind::kNodeDown:
    case FaultKind::kNodeUp: {
      node_dead_[e.a] = e.kind == FaultKind::kNodeDown ? 1 : 0;
      const auto arcs = net_.graph().arcs_of(e.a);
      for (std::size_t port = 0; port < arcs.size(); ++port) {
        refresh(net_.link_of(e.a, port));
        // Incoming direction: the reverse arc at the neighbor (all stock
        // networks are undirected, so it exists; if not, nothing to do).
        const NodeId w = arcs[port].to;
        const auto back = net_.graph().arcs_of(w);
        for (std::size_t q = 0; q < back.size(); ++q) {
          if (back[q].to == e.a) refresh(net_.link_of(w, q));
        }
      }
      break;
    }
  }
}

void FaultState::apply_until(double now) {
  bool any_repair = false;
  while (next_event_ < events_.size() && events_[next_event_].time <= now) {
    const FaultEvent& e = events_[next_event_++];
    any_repair |=
        e.kind == FaultKind::kLinkUp || e.kind == FaultKind::kNodeUp;
    apply(e);
  }
  if (any_repair) {
    arena_.clear_memo();
    return;
  }
  arena_.erase_memo_if([this](NodeId src, NodeId /*dst*/, RouteRef ref) {
    NodeId cur = src;
    const std::uint16_t* route = arena_.data() + ref.offset;
    for (std::uint16_t i = 0; i < ref.length; ++i) {
      const LinkId link = net_.link_of(cur, route[i]);
      if (usable_[link] == 0) return true;
      cur = net_.arc(cur, route[i]).to;
    }
    return false;
  });
}

bool FaultState::route_from(NodeId u, NodeId dst, RouteRef& out) {
  if (const RouteRef* hit = arena_.lookup(u, dst)) {
    out = *hit;
    return true;
  }
  scratch_.clear();
  // Prefer the topology router's route (the paper's routing) while it
  // avoids the dead set; fall back to a BFS shortest path otherwise.
  bool live = true;
  NodeId cur = u;
  for (const std::size_t dim : route_(u, dst)) {
    const std::size_t port = net_.port_for_dim(cur, dim);
    if (usable_[net_.link_of(cur, port)] == 0) {
      live = false;
      break;
    }
    scratch_.push_back(static_cast<std::uint16_t>(port));
    cur = net_.arc(cur, port).to;
  }
  if (!live) {
    scratch_.clear();
    if (!append_live_route(net_, usable_, u, dst, scratch_)) return false;
  }
  out = arena_.put(u, dst, scratch_);
  return true;
}

}  // namespace ipg::sim
