#pragma once
// Internals shared by the simulator engines (simulator.cpp, sharded.cpp).
//
// Not part of the public surface: everything here exists so the sequential
// engines and the sharded engine can share one definition of the packet
// state, per-link hot state, stats accumulator, and summarization — the
// bit-identity contract between engines rests on these being literally the
// same code. Include from src/sim translation units only.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/observer.hpp"
#include "sim/simulator.hpp"

namespace ipg::sim::detail {

struct EngineStats {
  double last_delivery = 0;
  /// Bounded-memory latency sample: exact (and bit-identical to the old
  /// unbounded vector) up to LatencyHistogram::kExactCap delivered
  /// packets, log-bucket estimates beyond.
  LatencyHistogram latency;
  std::size_t delivered = 0;
  std::size_t hops = 0;
  std::size_t offchip_hops = 0;
  std::size_t injected = 0;
  std::size_t dropped = 0;
  std::size_t retransmitted = 0;
  std::size_t in_flight = 0;
  std::size_t reroute_hops = 0;
  bool cutoff_hit = false;  ///< a max_cycles cutoff ended the run early
};

/// Diagnoses why bounded-buffer packets are stuck at end of run: every
/// undelivered packet is parked in some waiting list, so the "node hosting
/// a parked packet -> full node it wants to enter" relation must contain a
/// cycle at quiescence. Every edge is kept (a host may have parked packets
/// wanting different nodes — keeping only the first can dead-end the walk
/// on a non-cycle branch) and a DFS extracts a genuine cycle, reported
/// without any lead-in nodes so the message names only nodes that are
/// actually deadlocked. All three engines funnel through this one function
/// with their real waiting lists, so the message is identical across them.
/// @p at_of maps a parked packet id to the node currently hosting it.
template <typename AtOf>
[[noreturn]] void fail_with_deadlock_cycle(
    const std::vector<std::deque<std::uint32_t>>& waiting, AtOf&& at_of) {
  const std::size_t n = waiting.size();
  std::vector<std::vector<NodeId>> succ(n);
  for (std::size_t to = 0; to < n; ++to) {
    for (const std::uint32_t pid : waiting[to]) {
      succ[at_of(pid)].push_back(static_cast<NodeId>(to));
    }
  }
  std::string msg =
      "simulation ended with undelivered packets — routing deadlock under "
      "bounded buffers";
  // Iterative DFS; the first back edge closes a cycle, read off the stack.
  std::vector<NodeId> cycle;
  std::vector<std::uint8_t> color(n, 0);  // 0 unseen, 1 on stack, 2 done
  for (std::size_t s = 0; s < n && cycle.empty(); ++s) {
    if (color[s] != 0 || succ[s].empty()) continue;
    std::vector<std::pair<NodeId, std::size_t>> stack;
    stack.emplace_back(static_cast<NodeId>(s), 0);
    color[s] = 1;
    while (!stack.empty() && cycle.empty()) {
      const NodeId v = stack.back().first;
      std::size_t& i = stack.back().second;
      if (i < succ[v].size()) {
        const NodeId w = succ[v][i++];
        if (color[w] == 1) {
          std::size_t j = 0;
          while (stack[j].first != w) ++j;
          for (; j < stack.size(); ++j) cycle.push_back(stack[j].first);
        } else if (color[w] == 0) {
          color[w] = 1;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  if (!cycle.empty()) {
    msg += "; waiting cycle: ";
    for (const NodeId v : cycle) msg += std::to_string(v) + " -> ";
    msg += std::to_string(cycle.front());
  }
  throw std::invalid_argument(msg);
}

/// Retry backoff schedule shared by every faulty loop (sequential and
/// sharded): the delay before retransmission attempt @p attempt (1-based)
/// is retry_backoff_cycles * 2^min(attempt - 1, kRetryBackoffExpCap).
/// Computed with ldexp — an exact power-of-two scale, bit-identical to the
/// shift-and-multiply it replaces — and saturated at kRetryDelayCapCycles
/// so the delay stays finite even when attempt counts approach UINT32_MAX
/// under heavy percolation loss or the base delay is astronomically large:
/// an infinite event time would break canonical (time, seq) ordering and
/// the packet-conservation accounting.
constexpr std::uint32_t kRetryBackoffExpCap = 16;
constexpr double kRetryDelayCapCycles = 0x1p62;  ///< ~4.6e18 cycles, finite

inline double retry_backoff_delay(double backoff_cycles,
                                  std::uint32_t attempt) noexcept {
  const std::uint32_t exp =
      std::min(attempt > 0 ? attempt - 1 : 0u, kRetryBackoffExpCap);
  const double delay = std::ldexp(backoff_cycles, static_cast<int>(exp));
  return delay < kRetryDelayCapCycles ? delay : kRetryDelayCapCycles;
}

inline void record_delivery(EngineStats& stats, SimObserver* obs,
                            std::uint32_t pid, NodeId dst, double time,
                            double inject_time) {
  const double latency = time - inject_time;
  stats.latency.record(latency);
  stats.last_delivery = std::max(stats.last_delivery, time);
  ++stats.delivered;
  if (obs != nullptr) obs->on_deliver(pid, dst, time, latency);
}

/// Per-packet backing store of the arena engines. The hot loop reads it
/// only at injection, at delivery (inject_time), and on the bounded-buffer
/// blocked path — while a packet is in flight its state travels inside its
/// Event.
struct FlatPacket {
  NodeId at;                ///< current node (stale while in flight)
  std::uint32_t cursor;     ///< next port's index in the route arena
  std::uint16_t hops_left;
  std::uint16_t route_len;
  double inject_time;
};

/// Per-link state of one run, consolidated so a hop touches one cache line
/// and pays no divisions: transfer and inv_bandwidth are precomputed from
/// the same operands the reference engine divides per event, so the times
/// stay bit-identical. In the sharded engine the table is shared across
/// domains: the mutable fields of links[l] are touched only by the domain
/// owning l's upstream node, so element access stays disjoint.
struct LinkHot {
  double busy_until = 0;
  double busy_time = 0;
  double transfer;       ///< packet_length / bandwidth
  double inv_bandwidth;  ///< one flit time (cut-through head)
  NodeId to;             ///< downstream node
  std::uint32_t offchip;
};

std::vector<LinkHot> make_link_table(const SimNetwork& net,
                                     const SimConfig& cfg);

/// Folds timing components into the smallest k <= 12 such that every one
/// seen so far is an integer multiple of 2^-k; bits == -1 means no such k
/// (odd bandwidths like 3 flits/cycle give non-terminating binary transfer
/// times).
struct GridFold {
  int bits = 0;
  void fold(double v) {
    if (bits < 0) return;
    if (!std::isfinite(v) || v < 0) {
      bits = -1;
      return;
    }
    for (int k = bits; k <= 12; ++k) {
      const double scaled = std::ldexp(v, k);
      if (scaled == std::floor(scaled) && scaled < 9.0e15) {
        bits = k;
        return;
      }
    }
    bits = -1;
  }
};

/// Grid exponent for a run, or -1 if its timing does not quantize. When k
/// exists, every event time the engine can compute is a multiple of 2^-k
/// (times are sums and maxes of the folded components — including retry
/// backoff delays, which are power-of-two multiples of the base delay), and
/// TickQueue applies. Works for the healthy FlatPacket and the FaultPacket
/// loops alike; with the default max_retries == 0 it folds exactly the
/// components the pre-fault engine folded.
template <typename Packet>
int quantized_grid_bits(const std::vector<LinkHot>& links,
                        const SimConfig& cfg,
                        const std::vector<Packet>& packets) {
  GridFold f;
  f.fold(cfg.link_latency_cycles);
  for (const LinkHot& l : links) {
    f.fold(l.transfer);
    f.fold(l.inv_bandwidth);
    if (f.bits < 0) return f.bits;
  }
  for (const Packet& p : packets) {
    f.fold(p.inject_time);
    if (f.bits < 0) return f.bits;
  }
  if (cfg.max_retries > 0) {
    const std::uint32_t max_attempt =
        std::min<std::uint32_t>(cfg.max_retries, kRetryBackoffExpCap + 1);
    for (std::uint32_t a = 1; a <= max_attempt; ++a) {
      f.fold(retry_backoff_delay(cfg.retry_backoff_cycles, a));
      if (f.bits < 0) return f.bits;
    }
  }
  return f.bits;
}

/// Injection schedule: packet ids ordered by (inject_time, id). Stable sort
/// keeps generation order among equal-time injections, matching the
/// reference engine's upfront push order. Works for any packet type with an
/// inject_time field (FlatPacket and FaultPacket).
template <typename Packet>
std::vector<std::uint32_t> injection_order(const std::vector<Packet>& packets) {
  std::vector<std::uint32_t> order(packets.size());
  std::iota(order.begin(), order.end(), 0u);
  const bool sorted = std::is_sorted(
      packets.begin(), packets.end(), [](const Packet& a, const Packet& b) {
        return a.inject_time < b.inject_time;
      });
  if (!sorted) {
    std::stable_sort(order.begin(), order.end(),
                     [&packets](std::uint32_t a, std::uint32_t b) {
                       return packets[a].inject_time < packets[b].inject_time;
                     });
  }
  return order;
}

// Degraded-mode per-packet lifecycle states.
constexpr std::uint8_t kActive = 0;
constexpr std::uint8_t kDelivered = 1;
constexpr std::uint8_t kDropped = 2;

/// Authoritative per-packet state for degraded runs. Unlike the healthy
/// arena loop, events never carry packet state: routes can change while a
/// packet is parked, so the array is the single source of truth. Under the
/// sharded engine each packet is touched only by the domain owning its
/// current event; ownership hands over at sync barriers.
struct FaultPacket {
  NodeId src;
  NodeId dst;
  NodeId at;                    ///< current node
  std::uint32_t cursor = 0;     ///< next port's index in the fault arena
  std::uint16_t hops_left = 0;
  std::uint16_t reroutes = 0;   ///< detours adopted this attempt
  std::uint32_t attempt = 0;    ///< retransmissions so far
  double inject_time;           ///< original injection (latency baseline)
  std::uint8_t state = kActive;
  bool routed = false;          ///< cursor/hops_left valid
  bool moved = false;           ///< holds a buffer slot at its current node
};

SimResult summarize(const SimNetwork& net, EngineStats& stats,
                    const SimConfig& cfg,
                    const std::vector<double>& link_busy_time,
                    const std::vector<double>& link_busy_until);

}  // namespace ipg::sim::detail
