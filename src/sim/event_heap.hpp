#pragma once
// Event queue for the flow-level simulator: an indexed 4-ary min-heap
// fronted by monotone radix buckets.
//
// Two observations shape the design. First, the engine needs a *total*
// order on events — ties in time broken by a sequence number that is a
// pure function of the event's identity (packet id or node id, see
// Event::kPacketSeqBase) — so that every simulation's service order (and
// therefore every SimResult field) is a pure function of its inputs; the
// engine-equivalence, sharded-equivalence and sweep-determinism tests rely
// on this. Because the tie-break is identity-derived rather than a counter
// assigned at push time, independently running event queues (one per shard
// domain) agree on the order without any shared state. Second,
// event pops are monotone in time (a handled event only schedules events
// at or after its own timestamp), which admits a radix layout far cheaper
// than a comparison heap over the full event population.
//
// Events carry their time as the raw IEEE-754 bit pattern (order-preserving
// for the simulator's non-negative times). EventQueue keeps a small "band"
// of soonest events in an indexed 4-ary min-heap (EventHeap: flat array,
// implicit 4-ary indexing, half the depth of the binary std::priority_queue)
// and parks everything else in 64 radix buckets addressed by the highest
// bit in which an event's key differs from the last popped key. When the
// band drains, the lowest nonempty bucket is either adopted wholesale as
// the new band (small buckets) or split by a classic radix redistribution
// (large ones). Each event moves through O(1) buckets amortized, so pushes
// and pops cost a few cache lines instead of log2(N) comparisons over a
// quarter-million-event heap — the situation a 512-node total exchange
// puts the old std::priority_queue in.

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "util/check.hpp"

namespace ipg::sim {

struct Event {
  static constexpr std::uint32_t kFreeBufferBit = 0x80000000u;

  /// Canonical seq for a packet event: kPacketSeqBase + packet id. Free-
  /// buffer events use their node id (< kPacketSeqBase), so at equal times
  /// buffer releases are served before packet moves. A packet has at most
  /// one pending event at any instant and a node's duplicate free-buffer
  /// events are interchangeable, so identity-derived seqs still yield a
  /// deterministic total service order — with no shared push counter.
  static constexpr std::uint32_t kPacketSeqBase = 0x80000000u;

  std::uint64_t key;      ///< bit pattern of the (non-negative) time
  std::uint32_t seq;      ///< tie-break: identity-derived, lower pops first
  std::uint32_t id_kind;  ///< packet/node id; top bit set = free-buffer

  // In-flight packet state, carried in the event so the hot loop never
  // touches the (cache-cold) packet array between injection and delivery.
  // Ignored by free-buffer events and by the reference engine.
  std::uint32_t at = 0;         ///< node the packet sits at
  std::uint32_t cursor = 0;     ///< next port's index in the route arena
  std::uint16_t hops_left = 0;  ///< hops still to take
  std::uint16_t route_len = 0;  ///< total hops of the route

  static std::uint64_t key_of(double time) noexcept {
    return std::bit_cast<std::uint64_t>(time);
  }
  double time() const noexcept { return std::bit_cast<double>(key); }
  std::uint32_t id() const noexcept { return id_kind & ~kFreeBufferBit; }
  bool is_free_buffer() const noexcept { return (id_kind & kFreeBufferBit) != 0; }

  /// Canonical event order: earliest time first, then FIFO by sequence.
  friend bool operator<(const Event& a, const Event& b) noexcept {
    return a.key < b.key || (a.key == b.key && a.seq < b.seq);
  }
};
static_assert(sizeof(Event) == 32);

/// Indexed 4-ary min-heap over the canonical (time, seq) event order:
/// events live in a flat vector indexed implicitly (children of slot i at
/// 4i+1..4i+4), so sift paths touch one cache line per level.
class EventHeap {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  void reserve(std::size_t n) { heap_.reserve(n); }
  const Event& top() const noexcept { return heap_.front(); }

  void push(const Event& e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!(e < heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void pop() {
    const Event e = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return;
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (heap_[c] < heap_[best]) best = c;
      }
      if (!(heap_[best] < e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

 private:
  std::vector<Event> heap_;
};

/// Monotone event queue: radix buckets over the key bits, the 4-ary heap
/// as the in-band priority structure. Requires pushes at or after the last
/// popped (time, seq) — which the event loop guarantees — and in exchange
/// pops the canonical order with amortized O(1) bucket traffic.
class EventQueue {
 public:
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void push(const Event& e) {
    // Keys below the radix pivot can arise legitimately: the engine merges
    // injections *outside* the queue, and a top() call (to compare against
    // a pending injection) may redistribute and raise last_ past that
    // injection's time before the injection's own pushes arrive. The heap
    // orders such stragglers exactly and drains before any bucket, whose
    // entries all carry keys >= last_.
    if (e.key < last_) {
      heap_.push(e);
      ++size_;
      return;
    }
    const std::size_t idx = bucket_index(e.key);
    if (idx <= band_) {
      heap_.push(e);
    } else {
      buckets_[idx].push_back(e);
      mask_ |= std::uint64_t{1} << (idx - 1);
    }
    ++size_;
  }

  /// Minimum event; only valid when !empty().
  const Event& top() {
    refill();
    return heap_.top();
  }

  void pop() {
    refill();
    // max: popping a sub-pivot straggler must not lower the pivot, or the
    // frozen-bits argument for stored bucket indices would break.
    last_ = std::max(last_, heap_.top().key);
    heap_.pop();
    --size_;
  }

 private:
  /// 0 for keys equal to the last popped key, else 1 + index of the
  /// highest differing bit (1..64).
  std::size_t bucket_index(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(std::bit_width(key ^ last_));
  }

  void refill() {
    if (!heap_.empty()) return;
    IPG_DCHECK(mask_ != 0, "pop/top on an empty event queue");
    const std::size_t j = static_cast<std::size_t>(std::countr_zero(mask_)) + 1;
    std::vector<Event>& bucket = buckets_[j];
    mask_ &= ~(std::uint64_t{1} << (j - 1));
    // Small buckets become the band wholesale; the heap absorbs them and
    // the bits of last_ above the band stay frozen, so every other
    // bucket's index remains exact. Large buckets get the classic radix
    // split around their minimum key, strictly lowering each entry's
    // bucket index (amortized O(1) moves per event).
    if (bucket.size() <= kDirectBandMax) {
      for (const Event& e : bucket) heap_.push(e);
      band_ = j;
    } else {
      std::uint64_t min_key = bucket.front().key;
      for (const Event& e : bucket) min_key = std::min(min_key, e.key);
      last_ = min_key;
      band_ = 0;
      for (const Event& e : bucket) {
        const std::size_t idx = bucket_index(e.key);
        if (idx == 0) {
          heap_.push(e);
        } else {
          buckets_[idx].push_back(e);
          mask_ |= std::uint64_t{1} << (idx - 1);
        }
      }
    }
    bucket.clear();
  }

  static constexpr std::size_t kDirectBandMax = 64;

  EventHeap heap_;                            ///< the current band
  std::array<std::vector<Event>, 65> buckets_;  ///< [1..64] used
  std::uint64_t mask_ = 0;  ///< bit i-1 set iff buckets_[i] nonempty
  std::uint64_t last_ = 0;  ///< key of the last popped event (time 0.0)
  std::size_t band_ = 0;    ///< bucket indices <= band_ live in the heap
  std::size_t size_ = 0;
};

/// Monotone event queue for *quantized* time: when every timing component
/// of a run (link transfer times, flit times, link latency, injection
/// times) is an exact multiple of a power-of-two grid 2^-k, every event
/// time is too, and maps exactly to an integer tick. Events then sort by
/// bucketing instead of comparisons: a ring of 64-tick epochs receives
/// near-future events (one append each), events beyond the ring window
/// are binned into window-quarter bands drained into the ring exactly
/// once — when their whole band enters the window — and the current
/// epoch is counting-sorted by tick into a flat stream whose equal-tick
/// groups are ordered by seq. Only the rare event that lands at or
/// before the current epoch goes through the 4-ary heap. Pops merge the
/// flat stream, the heap, and (in the engine) the injection schedule;
/// ties resolve by seq via the canonical Event order. Exactly the
/// (time, seq) total order, at a handful of sequential memory touches
/// per event.
class TickQueue {
 public:
  static constexpr std::size_t kEpochTickBits = 6;  ///< 64 ticks per epoch
  static constexpr std::size_t kRingBits = 16;      ///< epochs in the window
  static constexpr std::size_t kRingSize = std::size_t{1} << kRingBits;
  static constexpr std::size_t kBandBits = 14;  ///< epochs per far-future band
  static constexpr std::uint64_t kTicksPerEpoch = std::uint64_t{1}
                                                  << kEpochTickBits;

  /// @p grid_bits: event times are multiples of 2^-grid_bits (see
  /// quantized_grid_bits in the engine).
  explicit TickQueue(int grid_bits)
      : scale_(std::ldexp(1.0, grid_bits)),
        ring_(kRingSize),
        bitmap_(kRingSize / 64, 0) {}

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void push(const Event& e) {
    const std::uint64_t epoch = tick_of(e.key) >> kEpochTickBits;
    // <= rather than ==: a top() call made to compare against a pending
    // injection may adopt an epoch *beyond* that injection, whose
    // subsequent pushes then land before cur_epoch_. The heap merges them
    // exactly (full (key, seq) comparison against the flat stream), so
    // stragglers still pop in canonical order.
    if (epoch <= cur_epoch_) {
      heap_.push(e);
    } else if (epoch - cur_epoch_ < kRingSize) {
      ring_insert(e, epoch);
    } else {
      far_[epoch >> kBandBits].push_back(e);
    }
    ++size_;
  }

  /// Minimum event; only valid when !empty().
  const Event& top() {
    if (flat_pos_ == flat_.size() && heap_.empty()) adopt_next_epoch();
    if (flat_pos_ == flat_.size()) return heap_.top();
    if (heap_.empty() || flat_[flat_pos_] < heap_.top()) {
      return flat_[flat_pos_];
    }
    return heap_.top();
  }

  void pop() {
    if (flat_pos_ == flat_.size() && heap_.empty()) adopt_next_epoch();
    if (flat_pos_ < flat_.size() &&
        (heap_.empty() || flat_[flat_pos_] < heap_.top())) {
      ++flat_pos_;
    } else {
      heap_.pop();
    }
    --size_;
  }

 private:
  std::uint64_t tick_of(std::uint64_t key) const noexcept {
    // Exact: the time is m * 2^-grid_bits with m well below 2^53.
    return static_cast<std::uint64_t>(std::bit_cast<double>(key) * scale_);
  }

  void ring_insert(const Event& e, std::uint64_t epoch) {
    const std::size_t slot = epoch & (kRingSize - 1);
    ring_[slot].push_back(e);
    bitmap_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++ring_count_;
  }

  /// A band's entries all fit the ring window once the band's last epoch
  /// is within kRingSize of cur_epoch_ (they are also all > cur_epoch_:
  /// they were pushed >= kRingSize ahead, and adoption never advances
  /// cur_epoch_ past an undrained band's first epoch).
  bool band_ready(std::uint64_t band) const noexcept {
    return ((band + 1) << kBandBits) <= cur_epoch_ + kRingSize;
  }

  void drain_ready_bands() {
    while (!far_.empty() && band_ready(far_.begin()->first)) {
      for (const Event& e : far_.begin()->second) {
        const std::uint64_t epoch = tick_of(e.key) >> kEpochTickBits;
        IPG_DCHECK(epoch > cur_epoch_, "far-band event in the past");
        ring_insert(e, epoch);
      }
      far_.erase(far_.begin());
    }
  }

  void adopt_next_epoch() {
    std::size_t slot;
    for (;;) {
      drain_ready_bands();
      if (ring_count_ == 0) {
        IPG_DCHECK(!far_.empty(), "pop/top on an empty event queue");
        // Nothing within the window: step to just before the earliest
        // band, which the next iteration drains (a pending band starts
        // > cur_epoch_ + kRingSize - kBandSize, so this moves forward).
        cur_epoch_ = (far_.begin()->first << kBandBits) - 1;
        continue;
      }
      // Next nonempty epoch: scan the ring bitmap from cur_epoch_ + 1,
      // wrapping once (all live epochs are within kRingSize of
      // cur_epoch_, so ring slots are unambiguous).
      const std::size_t start = (cur_epoch_ + 1) & (kRingSize - 1);
      std::size_t w = start >> 6;
      std::uint64_t bits = bitmap_[w] & (~std::uint64_t{0} << (start & 63));
      while (bits == 0) {
        w = (w + 1) & (bitmap_.size() - 1);
        bits = bitmap_[w];
      }
      slot = (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      const std::uint64_t epoch =
          cur_epoch_ + 1 + ((slot - start) & (kRingSize - 1));
      if (!far_.empty() && epoch >= (far_.begin()->first << kBandBits)) {
        // The next ring event sits past an undrained band: advance only
        // to the band boundary and drain it before deciding.
        cur_epoch_ = (far_.begin()->first << kBandBits) - 1;
        continue;
      }
      cur_epoch_ = epoch;
      bitmap_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
      break;
    }

    // Counting sort by tick-within-epoch. Insertion order is *usually*
    // sequence order (pushes draw monotone seqs), but band-drained far
    // events enter a slot after directly-pushed events with larger seqs,
    // so each equal-tick group is explicitly sorted by seq afterwards.
    // Same tick means same key (the grid makes tick <-> time bijective),
    // so the flat stream comes out exactly (key, seq)-sorted.
    std::vector<Event>& bucket = ring_[slot];
    std::array<std::uint32_t, kTicksPerEpoch> offsets{};
    for (const Event& e : bucket) ++offsets[tick_of(e.key) & (kTicksPerEpoch - 1)];
    std::uint32_t sum = 0;
    for (std::uint32_t& c : offsets) {
      const std::uint32_t count = c;
      c = sum;
      sum += count;
    }
    flat_.resize(bucket.size());
    for (const Event& e : bucket) {
      flat_[offsets[tick_of(e.key) & (kTicksPerEpoch - 1)]++] = e;
    }
    std::uint32_t begin = 0;
    for (const std::uint32_t end : offsets) {
      if (end - begin > 1 &&
          !std::is_sorted(flat_.begin() + begin, flat_.begin() + end,
                          [](const Event& a, const Event& b) { return a.seq < b.seq; })) {
        std::sort(flat_.begin() + begin, flat_.begin() + end,
                  [](const Event& a, const Event& b) { return a.seq < b.seq; });
      }
      begin = end;
    }
    flat_pos_ = 0;
    ring_count_ -= bucket.size();
    bucket.clear();
  }

  double scale_;                     ///< 2^grid_bits (time -> tick)
  EventHeap heap_;                   ///< events landing in the current epoch
  std::vector<Event> flat_;          ///< current epoch, (time, seq)-sorted
  std::size_t flat_pos_ = 0;
  std::vector<std::vector<Event>> ring_;  ///< future epochs, by epoch % size
  std::vector<std::uint64_t> bitmap_;     ///< nonempty ring slots
  std::size_t ring_count_ = 0;            ///< events across all ring slots
  std::map<std::uint64_t, std::vector<Event>> far_;  ///< beyond the window,
                                                     ///< by epoch >> kBandBits
  std::uint64_t cur_epoch_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ipg::sim
