#!/usr/bin/env python3
"""Minimal schema check for Chrome trace_event JSON emitted by
sim::ChromeTraceObserver (docs/OBSERVABILITY.md documents the schema).

Validates, with no third-party dependencies, that a trace file will load in
chrome://tracing / Perfetto:
  - top level is an object with a "traceEvents" array;
  - every event is an object with a string "ph" and integer "pid"/"tid";
  - "M" metadata events carry name + args;
  - "X" complete events carry numeric ts/dur >= 0;
  - "i" instant events carry numeric ts and scope "s";
  - both documented process tracks ("nodes", "links") are declared.

Usage: validate_trace.py TRACE.json
Exits 0 when valid, 1 with a diagnostic otherwise.
"""

import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_trace.py TRACE.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    require(isinstance(doc, dict), "top level must be a JSON object")
    events = doc.get("traceEvents")
    require(isinstance(events, list), '"traceEvents" must be an array')
    require(len(events) > 0, "trace has no events")

    process_names = set()
    counts = {"M": 0, "X": 0, "i": 0}
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        require(isinstance(e, dict), f"{where} is not an object")
        ph = e.get("ph")
        require(isinstance(ph, str), f'{where} lacks a string "ph"')
        require(isinstance(e.get("pid"), int), f'{where} lacks an integer "pid"')
        require(isinstance(e.get("tid"), int), f'{where} lacks an integer "tid"')
        if ph == "M":
            require(isinstance(e.get("name"), str), f"{where}: M event needs a name")
            require(isinstance(e.get("args"), dict), f"{where}: M event needs args")
            if e["name"] == "process_name":
                process_names.add(e["args"].get("name"))
        elif ph == "X":
            require(is_num(e.get("ts")), f"{where}: X event needs numeric ts")
            require(is_num(e.get("dur")), f"{where}: X event needs numeric dur")
            require(e["ts"] >= 0 and e["dur"] >= 0, f"{where}: negative ts/dur")
            require(isinstance(e.get("name"), str), f"{where}: X event needs a name")
        elif ph == "i":
            require(is_num(e.get("ts")), f"{where}: instant needs numeric ts")
            require(e.get("s") in ("t", "p", "g"), f"{where}: instant needs scope s")
            require(isinstance(e.get("name"), str), f"{where}: instant needs a name")
        else:
            fail(f"{where}: unexpected phase {ph!r}")
        counts[ph] += 1

    require({"nodes", "links"} <= process_names,
            f"missing process tracks, saw {sorted(process_names)}")
    require(counts["X"] > 0, "no link busy intervals recorded")
    require(counts["i"] > 0, "no instant markers recorded")
    print(f"validate_trace: OK: {len(events)} events "
          f"({counts['M']} metadata, {counts['X']} intervals, "
          f"{counts['i']} instants)")


if __name__ == "__main__":
    main()
