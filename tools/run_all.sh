#!/usr/bin/env bash
# Builds everything, runs the test suite, every experiment binary, and every
# example, teeing outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
mkdir -p results

ctest --test-dir build 2>&1 | tee results/ctest.txt

for b in build/bench/*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "=== $name ==="
  "$b" 2>&1 | tee "results/$name.txt"
done

for e in build/examples/*; do
  [ -x "$e" ] || continue
  name=$(basename "$e")
  echo "=== example: $name ==="
  "$e" 2>&1 | tee "results/example_$name.txt"
done

# Design-space explorer smoke: cold sweep then warm re-run that must be
# served entirely from the content-addressed store.
echo "=== ipg_design (smoke, cold + warm) ==="
rm -rf results/ipg-design-cache
build/tools/ipg_design sweep --smoke --quiet \
  --cache-dir results/ipg-design-cache \
  --json results/DESIGN_SPACE_smoke.json 2>&1 | tee results/ipg_design.txt
build/tools/ipg_design sweep --smoke --quiet --expect-all-hits \
  --cache-dir results/ipg-design-cache \
  --json results/DESIGN_SPACE_smoke_warm.json 2>&1 | tee -a results/ipg_design.txt

echo "All outputs under results/."
