#!/usr/bin/env bash
# Builds everything, runs the test suite, every experiment binary, and every
# example, teeing outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
mkdir -p results

ctest --test-dir build 2>&1 | tee results/ctest.txt

for b in build/bench/*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "=== $name ==="
  "$b" 2>&1 | tee "results/$name.txt"
done

for e in build/examples/*; do
  [ -x "$e" ] || continue
  name=$(basename "$e")
  echo "=== example: $name ==="
  "$e" 2>&1 | tee "results/example_$name.txt"
done

echo "All outputs under results/."
