// ipg_design — the MCMP design-space explorer CLI (docs/DESIGN_SPACE.md).
//
//   ipg_design sweep   [options]             evaluate the stock grid
//   ipg_design query   --family F [params]   evaluate one design point
//   ipg_design compare F:... F:... (point specs, --point also accepted)
//                                            evaluate an explicit list
//
// Every evaluation goes through the content-addressed result store
// (src/store): the static metric bundle and every simulation replicate are
// keyed by a canonical fingerprint of (topology, params, config, seed), so
// re-running any overlapping grid is incremental — a fully warm run
// performs zero simulator invocations and zero bisection searches.
//
// Options:
//   --cache-dir DIR    result store root (default .ipg-cache)
//   --no-cache         bypass the store entirely
//   --invalidate       delete every cached record, then proceed
//   --json FILE        write the machine-readable report (default
//                      DESIGN_SPACE.json for sweep, stdout table only
//                      otherwise; "-" = stdout)
//   --seeds N          batch replicates per design (default 4)
//   --smoke            small grid for CI (4 families x 4 param points)
//   --expect-all-hits  exit 1 unless every sim job and every static bundle
//                      came from the cache (the CI warm-cache gate)
//   --quiet            suppress per-job sweep progress on stderr
//
// Point syntax for query/compare:
//   hsn:l=2,q=3        super families (hsn, sfn, ring-cn, complete-cn):
//                      l levels over a Q_q nucleus
//   hypercube:n=8,m=16 Q_n with m-node subcube chips
//   kary2:k=16,m=16    k-ary 2-cube with m-node square chips
//
// Exit status: 0 success, 1 failed --expect-all-hits, 2 usage errors.
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "explore/design_space.hpp"
#include "sim/sweep.hpp"
#include "store/fingerprint.hpp"
#include "store/result_store.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace ipg;
using explore::DesignMetrics;
using explore::DesignPoint;

struct Options {
  std::string command;
  std::string cache_dir = ".ipg-cache";
  bool no_cache = false;
  bool invalidate = false;
  std::string json_path;  ///< empty = command default; "-" = stdout
  std::size_t seeds = 4;
  bool smoke = false;
  bool expect_all_hits = false;
  bool quiet = false;
  std::vector<DesignPoint> points;  ///< query/compare
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <sweep|query|compare> [options]\n"
         "  sweep                      evaluate the stock comparison grid\n"
         "  query --family F [--levels L] [--nucleus-dim Q] [--chip-size M]\n"
         "  compare SPEC [SPEC ...]   (or --point SPEC)\n"
         "options: --cache-dir DIR | --no-cache | --invalidate |\n"
         "         --json FILE | --seeds N | --smoke | --expect-all-hits |\n"
         "         --quiet\n"
         "point spec: hsn:l=2,q=3 | hypercube:n=8,m=16 | kary2:k=16,m=16\n";
  return 2;
}

/// Parses "hsn:l=2,q=3" / "hypercube:n=8,m=16" / "kary2:k=16,m=16".
std::optional<DesignPoint> parse_point(const std::string& spec) {
  const auto colon = spec.find(':');
  DesignPoint p;
  p.family = spec.substr(0, colon);
  if (colon == std::string::npos) return p;
  std::string rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string kv = rest.substr(0, comma);
    rest = comma == std::string::npos ? std::string() : rest.substr(comma + 1);
    const auto eq = kv.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string k = kv.substr(0, eq);
    const auto parsed =
        util::parse_unsigned<unsigned long>(kv.substr(eq + 1));
    if (!parsed.has_value()) return std::nullopt;
    const unsigned long v = *parsed;
    if (k == "l" || k == "n" || k == "k") {
      p.levels = v;
    } else if (k == "q") {
      p.nucleus_dim = static_cast<unsigned>(v);
    } else if (k == "m") {
      p.chip_size = v;
    } else {
      return std::nullopt;
    }
  }
  return p;
}

void print_table(const std::vector<DesignMetrics>& rows) {
  util::Table t;
  t.header({"design", "nodes", "chips", "ic deg", "link bw", "avg ic dist",
            "ic diam", "B_B meas", "B_B form", "batch tput", "batch lat",
            "open lat", "cached"});
  for (const DesignMetrics& m : rows) {
    t.add(m.name, m.nodes, m.num_chips, m.offchip_links_per_node,
          m.offchip_link_bandwidth, m.avg_ic_distance, m.ic_diameter,
          m.bisection_measured, m.bisection_closed_form, m.batch_throughput,
          m.batch_avg_latency, m.open_avg_latency,
          std::to_string(m.sim_cache_hits) + "/" + std::to_string(m.sim_jobs) +
              (m.static_from_cache ? "+s" : ""));
  }
  t.print(std::cout);
}

void emit_json(std::ostream& os, const std::string& command,
               const std::vector<DesignMetrics>& rows,
               const store::ResultStore* cache) {
  util::JsonWriter w(os);
  w.begin_object()
      .field("schema", "ipg-design-space-v1")
      .field("command", command)
      .field("key_schema_version",
             static_cast<std::uint64_t>(store::kSchemaVersion));
  w.begin_array("designs");
  for (const DesignMetrics& m : rows) {
    w.begin_object()
        .field("name", m.name)
        .field("family", m.point.family)
        .field("levels", static_cast<std::uint64_t>(m.point.levels))
        .field("nucleus_dim", m.point.nucleus_dim)
        .field("nodes", static_cast<std::uint64_t>(m.nodes))
        .field("num_chips", static_cast<std::uint64_t>(m.num_chips))
        .field("chip_size", static_cast<std::uint64_t>(m.chip_size))
        .field("offchip_links_per_node", m.offchip_links_per_node)
        .field("offchip_link_bandwidth", m.offchip_link_bandwidth)
        .field("avg_ic_distance", m.avg_ic_distance)
        .field("ic_diameter", static_cast<std::uint64_t>(m.ic_diameter))
        .field("bisection_measured", m.bisection_measured);
    w.field_if_finite("bisection_closed_form", m.bisection_closed_form);
    w.field("batch_throughput", m.batch_throughput)
        .field("batch_avg_latency", m.batch_avg_latency);
    w.field_if_finite("open_avg_latency", m.open_avg_latency);
    w.field_if_finite("open_p99_latency", m.open_p99_latency);
    w.field("static_from_cache", m.static_from_cache)
        .field("sim_jobs", static_cast<std::uint64_t>(m.sim_jobs))
        .field("sim_cache_hits", static_cast<std::uint64_t>(m.sim_cache_hits))
        .end_object();
  }
  w.end_array();
  if (cache != nullptr) {
    const store::StoreStats s = cache->stats();
    w.begin_object("cache")
        .field("root", cache->root().string())
        .field("hits", s.hits)
        .field("misses", s.misses)
        .field("corrupt", s.corrupt)
        .field("writes", s.writes)
        .field("bytes_read", s.bytes_read)
        .field("bytes_written", s.bytes_written)
        .field("entries", cache->entry_count())
        .end_object();
  }
  w.end_object();
  os << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (argc < 2) return usage(argv[0]);
  opt.command = argv[1];
  if (opt.command != "sweep" && opt.command != "query" &&
      opt.command != "compare") {
    std::cerr << "unknown command: " << opt.command << "\n";
    return usage(argv[0]);
  }

  DesignPoint query_point;
  bool saw_family = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.cache_dir = v;
    } else if (arg == "--no-cache") {
      opt.no_cache = true;
    } else if (arg == "--invalidate") {
      opt.invalidate = true;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.json_path = v;
    } else if (arg == "--seeds") {
      const auto v =
          util::checked_flag_value<std::size_t>("--seeds", next(), std::cerr);
      if (!v.has_value()) return usage(argv[0]);
      opt.seeds = *v;
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--expect-all-hits") {
      opt.expect_all_hits = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--point" && opt.command == "compare") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      const auto p = parse_point(v);
      if (!p.has_value()) {
        std::cerr << "bad point spec: " << v << "\n";
        return usage(argv[0]);
      }
      opt.points.push_back(*p);
    } else if (arg == "--family" && opt.command == "query") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      query_point.family = v;
      saw_family = true;
    } else if (arg == "--levels" && opt.command == "query") {
      const auto v =
          util::checked_flag_value<std::size_t>("--levels", next(), std::cerr);
      if (!v.has_value()) return usage(argv[0]);
      query_point.levels = *v;
    } else if (arg == "--nucleus-dim" && opt.command == "query") {
      const auto v = util::checked_flag_value<unsigned>("--nucleus-dim",
                                                        next(), std::cerr);
      if (!v.has_value()) return usage(argv[0]);
      query_point.nucleus_dim = *v;
    } else if (arg == "--chip-size" && opt.command == "query") {
      const auto v = util::checked_flag_value<std::size_t>("--chip-size",
                                                           next(), std::cerr);
      if (!v.has_value()) return usage(argv[0]);
      query_point.chip_size = *v;
    } else if (opt.command == "compare" && !arg.empty() && arg[0] != '-') {
      // Bare point specs ("hsn:l=2,q=4") are accepted as shorthand for
      // --point.
      const auto p = parse_point(arg);
      if (!p.has_value()) {
        std::cerr << "bad point spec: " << arg << "\n";
        return usage(argv[0]);
      }
      opt.points.push_back(*p);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    }
  }

  std::vector<DesignPoint> grid;
  if (opt.command == "sweep") {
    grid = explore::default_grid(opt.smoke);
  } else if (opt.command == "query") {
    if (!saw_family) {
      std::cerr << "query needs --family\n";
      return usage(argv[0]);
    }
    grid.push_back(query_point);
  } else {
    if (opt.points.empty()) {
      std::cerr << "compare needs at least one --point\n";
      return usage(argv[0]);
    }
    grid = opt.points;
  }

  std::unique_ptr<store::ResultStore> cache;
  if (!opt.no_cache) {
    try {
      cache = std::make_unique<store::ResultStore>(opt.cache_dir);
    } catch (const std::exception& e) {
      std::cerr << "cannot open cache at " << opt.cache_dir << ": " << e.what()
                << " (continuing uncached)\n";
    }
  }
  if (cache != nullptr) {
    cache->set_log(&std::cerr);
    if (opt.invalidate) {
      std::cerr << "[cache] invalidated " << cache->invalidate()
                << " records under " << cache->root().string() << "\n";
    }
  }

  explore::ExploreConfig cfg;
  cfg.cache = cache.get();
  cfg.seed_replicates = opt.seeds;
  sim::StreamSweepProgress progress(std::cerr);
  if (!opt.quiet) cfg.progress = &progress;

  std::vector<DesignMetrics> rows;
  try {
    rows = explore::evaluate_grid(grid, cfg);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  print_table(rows);

  std::string json_path = opt.json_path;
  if (json_path.empty() && opt.command == "sweep") {
    json_path = "DESIGN_SPACE.json";
  }
  if (!json_path.empty()) {
    if (json_path == "-") {
      emit_json(std::cout, opt.command, rows, cache.get());
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "cannot write " << json_path << "\n";
        return 2;
      }
      emit_json(out, opt.command, rows, cache.get());
      std::cout << "wrote " << json_path << "\n";
    }
  }

  std::size_t jobs = 0, hits = 0, static_misses = 0;
  for (const DesignMetrics& m : rows) {
    jobs += m.sim_jobs;
    hits += m.sim_cache_hits;
    if (!m.static_from_cache) ++static_misses;
  }
  std::cerr << "[cache] " << hits << "/" << jobs << " sim jobs from cache, "
            << (rows.size() - static_misses) << "/" << rows.size()
            << " static bundles from cache\n";
  if (opt.expect_all_hits && (hits != jobs || static_misses != 0)) {
    std::cerr << "--expect-all-hits: cold entries found ("
              << (jobs - hits) << " sim misses, " << static_misses
              << " static misses)\n";
    return 1;
  }
  return 0;
}
