// ipg_resilience — production-scale fault-tolerance studies CLI.
//
//   ipg_resilience [--smoke] [--percolation] [--supergraph] [--trials N]
//                  [--out-dir DIR] [--cache-dir DIR] [--no-cache]
//                  [--invalidate]
//
// Two studies (both run when neither --percolation nor --supergraph is
// given):
//   percolation — Monte Carlo availability sweeps: Bernoulli(p) link
//     failures over super-IPG fabrics (HSN, SFN) and their hypercube /
//     k-ary comparison networks, measuring surviving structure (largest
//     component, s–t reachability) and surviving service (delivered
//     fraction, latency inflation, reroute overhead) under fault-aware
//     rerouting. Emits BENCH_percolation.json (schema ipg-percolation-v1).
//   supergraph — k-fault-tolerant supergraph augmentation of small nuclei
//     (Ganesan circulant widening vs Hayes universal spares), containment
//     verified from scratch per construction, with the extra-link cost of
//     augmenting every chip of an MCMP fabric. Emits RESILIENCE.json
//     (schema ipg-resilience-v1).
//
// --smoke shrinks both studies to a seconds-scale CI gate (fewer nets,
// fewer probabilities, fewer trials) with the same schemas.
//
// Percolation trials run through the content-addressed result store
// (docs/DESIGN_SPACE.md): every trial's FaultPlan is a pure function of the
// sweep seed, so re-running an identical sweep performs zero simulator
// invocations. --cache-dir picks the store root (default .ipg-cache),
// --no-cache bypasses it, --invalidate wipes it first.
//
// Exit status: 0 on success (including all containment checks passing), 1
// when any supergraph containment check fails, 2 on usage errors.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mcmp/capacity.hpp"
#include "resilience/percolation.hpp"
#include "util/cli.hpp"
#include "resilience/supergraph.hpp"
#include "sim/routers.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "store/result_store.hpp"
#include "topology/named.hpp"
#include "topology/nucleus.hpp"
#include "topology/super_ipg.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace ipg;
using namespace ipg::topology;
using namespace ipg::sim;
using namespace ipg::resilience;

struct Net {
  std::string name;
  Graph graph;
  Clustering chips;
  SimNetwork network;
  Router router;
};

Net from_super(SuperIpg ipg) {
  auto s = std::make_shared<SuperIpg>(std::move(ipg));
  Graph g = s->to_graph();
  Clustering chips = s->nucleus_clustering();
  return {s->name(), Graph(g), Clustering(chips),
          mcmp::make_unit_chip_network(std::move(g), std::move(chips), 1.0),
          [s](NodeId a, NodeId b) { return s->route(a, b); }};
}

Net from_hypercube(unsigned n, std::size_t m_per_chip) {
  Graph g = hypercube_graph(n);
  Clustering chips = hypercube_subcube_clustering(n, m_per_chip);
  return {"Q" + std::to_string(n), Graph(g), Clustering(chips),
          mcmp::make_unit_chip_network(std::move(g), std::move(chips), 1.0),
          hypercube_router(n)};
}

std::vector<Net> build_networks(bool smoke) {
  std::vector<Net> nets;
  if (smoke) {
    nets.push_back(from_super(make_hsn(2, std::make_shared<HypercubeNucleus>(2))));
    nets.push_back(from_super(make_sfn(2, std::make_shared<HypercubeNucleus>(2))));
    nets.push_back(from_hypercube(4, 4));
  } else {
    nets.push_back(from_super(make_hsn(2, std::make_shared<HypercubeNucleus>(3))));
    nets.push_back(from_super(make_sfn(3, std::make_shared<HypercubeNucleus>(2))));
    nets.push_back(from_hypercube(6, 8));
  }
  return nets;
}

void emit_percolation_json(std::ostream& os,
                           const std::vector<PercolationCurve>& curves,
                           const PercolationConfig& cfg, bool smoke,
                           const store::ResultStore* cache) {
  util::JsonWriter w(os);
  w.begin_object()
      .field("schema", "ipg-percolation-v1")
      .field("smoke", smoke)
      .field("failure_mode", cfg.mode == FailureMode::kLinks ? "links" : "nodes")
      .field("offchip_only", cfg.offchip_only)
      .field("trials", static_cast<std::uint64_t>(cfg.trials))
      .field("seed", cfg.seed)
      .field("st_samples", static_cast<std::uint64_t>(cfg.st_samples))
      .field("rate", cfg.rate)
      .field("inject_cycles", static_cast<std::uint64_t>(cfg.inject_cycles));
  w.begin_object("curves");
  for (const PercolationCurve& curve : curves) {
    w.begin_object(curve.name);
    w.field("healthy_avg_latency", curve.healthy_avg_latency);
    w.begin_array("points");
    for (const PercolationPoint& pt : curve.points) {
      w.begin_object()
          .field("p", pt.p)
          .field("trials", static_cast<std::uint64_t>(pt.trials))
          .field("connected_fraction", pt.connected_fraction)
          .field("largest_component_fraction", pt.largest_component_fraction)
          .field("st_reachability", pt.st_reachability)
          .field("delivered_fraction", pt.delivered_fraction)
          .field("latency_inflation", pt.latency_inflation)
          .field("reroute_hops_per_delivered", pt.reroute_hops_per_delivered)
          .field("retransmits_per_injected", pt.retransmits_per_injected)
          .end_object();
    }
    w.end_array().end_object();
  }
  w.end_object();
  if (cache != nullptr) {
    const store::StoreStats s = cache->stats();
    w.begin_object("cache")
        .field("root", cache->root().string())
        .field("hits", s.hits)
        .field("misses", s.misses)
        .field("corrupt", s.corrupt)
        .field("writes", s.writes)
        .end_object();
  }
  w.end_object();
  os << "\n";
}

int run_percolation(bool smoke, std::size_t trials_override,
                    const std::string& out_dir, store::ResultStore* cache) {
  PercolationConfig cfg;
  cfg.cache = cache;
  cfg.pattern_tag = "uniform";
  cfg.mode = FailureMode::kLinks;
  cfg.offchip_only = true;  // chip-internal wiring assumed reliable (MCMP)
  if (smoke) {
    cfg.probabilities = {0.0, 0.1, 0.3};
    cfg.trials = 4;
    cfg.inject_cycles = 100;
  } else {
    cfg.probabilities = {0.0, 0.02, 0.05, 0.1, 0.15, 0.25, 0.4};
    cfg.trials = 24;
    cfg.inject_cycles = 200;
  }
  if (trials_override > 0) cfg.trials = trials_override;
  cfg.seed = 1;
  cfg.rate = 0.05;
  cfg.sim.packet_length_flits = 4;
  cfg.sim.max_retries = 2;
  cfg.sim.retry_backoff_cycles = 32;

  std::vector<PercolationCurve> curves;
  for (const Net& net : build_networks(smoke)) {
    std::cerr << "[percolation] " << net.name << " ("
              << net.graph.num_nodes() << " nodes)\n";
    // Routers are opaque callables; the construction name pins the route
    // function (each named net has exactly one canonical router here).
    cfg.router_tag = "canonical:" + net.name;
    curves.push_back(percolation_sweep(net.network, net.router,
                                       uniform_traffic(net.network.num_nodes()),
                                       cfg));
    util::Table t;
    t.header({"p", "connected", "lcc frac", "s-t reach", "delivered",
              "lat infl", "reroute/pkt", "retx/inj"});
    for (const PercolationPoint& pt : curves.back().points) {
      t.add(pt.p, pt.connected_fraction, pt.largest_component_fraction,
            pt.st_reachability, pt.delivered_fraction, pt.latency_inflation,
            pt.reroute_hops_per_delivered, pt.retransmits_per_injected);
    }
    std::cout << "--- " << curves.back().name << " ---\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  const std::string path = out_dir + "/BENCH_percolation.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  emit_percolation_json(out, curves, cfg, smoke, cache);
  if (cache != nullptr) {
    const store::StoreStats st = cache->stats();
    std::cout << "[cache] " << st.hits << " hits / " << st.misses
              << " misses / " << st.writes << " writes under "
              << cache->root().string() << "\n";
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}

struct SupergraphRow {
  std::string nucleus;
  std::size_t n = 0;
  std::size_t k = 0;
  std::string method;
  std::size_t extra_edges = 0;
  std::size_t baseline_extra_edges = 0;  ///< universal-spares cost
  std::size_t max_degree = 0;
  ContainmentReport report;
};

void emit_resilience_json(std::ostream& os,
                          const std::vector<SupergraphRow>& rows,
                          bool smoke) {
  util::JsonWriter w(os);
  w.begin_object().field("schema", "ipg-resilience-v1").field("smoke", smoke);
  w.begin_array("supergraphs");
  for (const SupergraphRow& r : rows) {
    w.begin_object()
        .field("nucleus", r.nucleus)
        .field("n", static_cast<std::uint64_t>(r.n))
        .field("k", static_cast<std::uint64_t>(r.k))
        .field("method", r.method)
        .field("extra_edges", static_cast<std::uint64_t>(r.extra_edges))
        .field("universal_spares_extra_edges",
               static_cast<std::uint64_t>(r.baseline_extra_edges))
        .field("cost_ratio",
               r.baseline_extra_edges > 0
                   ? static_cast<double>(r.extra_edges) /
                         static_cast<double>(r.baseline_extra_edges)
                   : std::nan(""))
        .field("max_degree", static_cast<std::uint64_t>(r.max_degree))
        .field("subsets_checked",
               static_cast<std::uint64_t>(r.report.subsets_checked))
        .field("exhaustive", r.report.exhaustive)
        .field("containment_failures",
               static_cast<std::uint64_t>(r.report.failures))
        .end_object();
  }
  w.end_array().end_object();
  os << "\n";
}

int run_supergraph(bool smoke, const std::string& out_dir) {
  struct Nucleus {
    std::string name;
    Graph graph;
  };
  std::vector<Nucleus> nuclei;
  nuclei.push_back({"C6", ring_graph(6)});
  nuclei.push_back({"C8", ring_graph(8)});
  nuclei.push_back({"K5", complete_graph(5)});
  nuclei.push_back({"Q3", hypercube_graph(3)});

  const std::vector<std::size_t> ks = smoke ? std::vector<std::size_t>{1}
                                            : std::vector<std::size_t>{1, 2};

  std::vector<SupergraphRow> rows;
  bool all_passed = true;
  for (const Nucleus& nu : nuclei) {
    for (const std::size_t k : ks) {
      const Supergraph sg = k_fault_supergraph(nu.graph, k);
      const Supergraph base = k_fault_universal(nu.graph, k);
      SupergraphRow row;
      row.nucleus = nu.name;
      row.n = nu.graph.num_nodes();
      row.k = k;
      row.method = sg.method;
      row.extra_edges = sg.extra_edges;
      row.baseline_extra_edges = base.extra_edges;
      row.max_degree = sg.max_degree;
      row.report = verify_k_containment(nu.graph, sg, k);
      if (!row.report.passed()) {
        all_passed = false;
        std::cerr << "CONTAINMENT FAILURE: " << nu.name << " k=" << k
                  << " deleted={" << row.report.first_failure << "}\n";
      }
      rows.push_back(std::move(row));
    }
  }

  util::Table t;
  t.header({"nucleus", "n", "k", "method", "extra edges", "universal extra",
            "max deg", "subsets", "exhaustive", "failures"});
  for (const SupergraphRow& r : rows) {
    t.add(r.nucleus, r.n, r.k, r.method, r.extra_edges,
          r.baseline_extra_edges, r.max_degree, r.report.subsets_checked,
          r.report.exhaustive ? "yes" : "sampled", r.report.failures);
  }
  std::cout << "--- k-fault supergraph augmentation ---\n";
  t.print(std::cout);

  // MCMP chip-level cost: augmenting every chip of HSN(2,C8) with the
  // circulant construction vs giving every Q3-subcube chip of Q6 universal
  // spares — the per-chip gap times the chip count.
  {
    const Supergraph ring1 = k_fault_supergraph(ring_graph(8), 1);
    const Supergraph cube1 = k_fault_supergraph(hypercube_graph(3), 1);
    const std::size_t hsn_chips =
        make_hsn(2, std::make_shared<RingNucleus>(8)).nucleus_clustering()
            .num_clusters();
    const std::size_t q6_chips = 64 / 8;
    std::cout << "\nper-chip augmentation cost (k=1): HSN(2,C8) "
              << hsn_chips << " chips x " << ring1.extra_edges
              << " extra links (" << ring1.method << ") = "
              << hsn_chips * ring1.extra_edges << " vs Q6 " << q6_chips
              << " chips x " << cube1.extra_edges << " (" << cube1.method
              << ") = " << q6_chips * cube1.extra_edges << "\n";
  }

  const std::string path = out_dir + "/RESILIENCE.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 2;
  }
  emit_resilience_json(out, rows, smoke);
  std::cout << "wrote " << path << "\n";
  return all_passed ? 0 : 1;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--smoke] [--percolation] [--supergraph] [--out-dir DIR]"
               " [--cache-dir DIR] [--no-cache] [--invalidate]"
               " [--trials N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool percolation = false;
  bool supergraph = false;
  bool no_cache = false;
  bool invalidate = false;
  std::size_t trials_override = 0;  ///< 0 = the smoke/full default
  std::string out_dir = ".";
  std::string cache_dir = ".ipg-cache";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--percolation") {
      percolation = true;
    } else if (arg == "--supergraph") {
      supergraph = true;
    } else if (arg == "--out-dir") {
      if (i + 1 >= argc) return usage(argv[0]);
      out_dir = argv[++i];
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) return usage(argv[0]);
      cache_dir = argv[++i];
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--invalidate") {
      invalidate = true;
    } else if (arg == "--trials") {
      const auto v = util::checked_flag_value<std::size_t>(
          "--trials", i + 1 < argc ? argv[++i] : nullptr, std::cerr);
      if (!v.has_value() || *v == 0) {
        if (v.has_value()) std::cerr << "error: --trials must be at least 1\n";
        return usage(argv[0]);
      }
      trials_override = *v;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (!percolation && !supergraph) percolation = supergraph = true;

  std::unique_ptr<store::ResultStore> cache;
  if (!no_cache) {
    try {
      cache = std::make_unique<store::ResultStore>(cache_dir);
      cache->set_log(&std::cerr);
    } catch (const std::exception& e) {
      std::cerr << "cannot open cache at " << cache_dir << ": " << e.what()
                << " (continuing uncached)\n";
    }
  }
  if (cache != nullptr && invalidate) {
    std::cerr << "[cache] invalidated " << cache->invalidate()
              << " records under " << cache->root().string() << "\n";
  }

  int status = 0;
  if (percolation) {
    const int rc =
        run_percolation(smoke, trials_override, out_dir, cache.get());
    if (rc != 0) return rc;
  }
  if (supergraph) {
    const int rc = run_supergraph(smoke, out_dir);
    if (rc != 0) status = rc;
  }
  return status;
}
