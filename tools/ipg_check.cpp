// ipg_check — the paper-conformance differential checker CLI.
//
//   ipg_check --all [--seeds N] [--json FILE] [--verbose]
//   ipg_check --check ID [--check ID ...] [...]
//   ipg_check --list
//
// Exit status: 0 when every selected check passed, 1 on any FAIL, 2 on
// usage errors. CI runs `ipg_check --all --seeds 4 --json CONFORMANCE.json`
// and fails the build on a nonzero exit.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "conformance/conformance.hpp"
#include "util/cli.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " (--all | --check ID... | --list)\n"
      << "       [--seeds N]   seed replicates for randomized pieces "
         "(default 2)\n"
      << "       [--json FILE] write the machine-readable CONFORMANCE "
         "report\n"
      << "       [--verbose]   per-instance progress on stderr\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ipg::conformance;

  bool all = false;
  bool list = false;
  std::vector<std::string> ids;
  std::string json_path;
  RunOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--all") {
      all = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--check") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      ids.emplace_back(v);
    } else if (arg == "--seeds") {
      const auto v = ipg::util::checked_flag_value<std::size_t>(
          "--seeds", next(), std::cerr);
      if (!v.has_value()) return usage(argv[0]);
      opts.seeds = *v;
      if (opts.seeds == 0) {
        std::cerr << "--seeds must be at least 1\n";
        return 2;
      }
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      json_path = v;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    }
  }

  if (list) {
    for (const CheckSpec& spec : registry()) {
      std::cout << spec.id << "\n    " << spec.theorems << "\n    "
                << spec.claim << "\n";
    }
    return 0;
  }
  if (all ? !ids.empty() : ids.empty()) {
    // exactly one of --all / --check must be given
    return usage(argv[0]);
  }

  std::vector<CheckResult> results;
  try {
    results = all ? run_all(opts) : run_selected(ids, opts);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  const bool ok = print_report(std::cout, results);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    write_json(out, results, opts);
  }
  return ok ? 0 : 1;
}
